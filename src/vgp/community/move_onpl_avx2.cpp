// ONPL (One Neighbor Per Lane) Louvain move phase, AVX2 (8-lane) tier.
// Compiled with -mavx2.
//
// Mirrors move_onpl_avx512.cpp at half width with the three emulations
// from simd/avx2_common.hpp: conflict detection via the 7-step
// permute-compare construction, in-vector reduction via a horizontal add,
// and scatters as sequential store loops (AVX2 has no scatter — the
// instruction-level reason the paper calls OVPL impossible before
// AVX-512; ONPL survives because its scatters are small and its gathers
// are real).
//
// The modularity-gain scan stays scalar at this tier: with only 4 double
// lanes per 256-bit register, the cross-width shuffles the 16-lane
// version uses to pair float affinities with double volumes cost more
// than the scan itself on typical candidate lists.
#include <atomic>

#include "vgp/community/move_ctx.hpp"
#include "vgp/parallel/thread_pool.hpp"
#include "vgp/simd/avx2_common.hpp"
#include "vgp/support/timer.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::community {
namespace {

using simd::bits_from_mask8;
using simd::kLanes8;
using simd::mask_from_bits8;
using simd::tail_bits8;

/// Gather-lane occupancy for one worker chunk (flushed once per chunk).
struct LaneUse {
  std::int64_t active = 0;
  std::int64_t total = 0;
};

/// Distinct negative sentinels for inactive gather lanes, so the conflict
/// emulation never reports a false duplicate against an active lane
/// (community ids are always >= 0).
inline __m256i neg_lanes8() {
  return _mm256_setr_epi32(-1, -2, -3, -4, -5, -6, -7, -8);
}

/// Registers candidate first-touch communities (gathered affinity exactly
/// zero) through DenseAffinity::note(), which holds the exact membership
/// test. No compress-store in AVX2: store + bit loop.
inline void record_first_touch(DenseAffinity& aff, unsigned zero_bits,
                               __m256i vcomm) {
  if (zero_bits == 0u) return;
  alignas(32) CommunityId comm[kLanes8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(comm), vcomm);
  while (zero_bits != 0u) {
    const int lane = __builtin_ctz(zero_bits);
    aff.note(comm[lane]);
    zero_bits &= zero_bits - 1;
  }
}

/// Affinity accumulation with the emulated conflict-detection
/// reduce-scatter.
void accumulate_conflict(const MoveCtx& ctx, VertexId u, DenseAffinity& aff,
                         simd::OpTally& tally, LaneUse& lanes) {
  const Graph& g = *ctx.g;
  const CommunityId* zeta = ctx.zeta->data();
  float* table = aff.data();

  const auto b = g.offset(u);
  const auto deg = g.degree(u);
  const VertexId* adj = g.adjacency_data() + b;
  const float* wgt = g.weights_data() + b;
  const __m256i vu = _mm256_set1_epi32(u);

  for (std::int64_t i = 0; i < deg; i += kLanes8) {
    const unsigned tail = tail_bits8(deg - i);
    const __m256i tailm = mask_from_bits8(tail);
    const __m256i vnbr = simd::maskload_epi32_avx2(adj + i, tailm);
    // Self-loop exclusion: the gain formula is over N(u) \ {u}.
    const unsigned m =
        tail & ~bits_from_mask8(_mm256_cmpeq_epi32(vnbr, vu));
    const __m256i vm = mask_from_bits8(m);
    const __m256 vw = simd::maskload_ps_avx2(wgt + i, tailm);
    const __m256i vcomm =
        _mm256_mask_i32gather_epi32(neg_lanes8(), zeta, vnbr, vm, 4);

    lanes.active += __builtin_popcount(m);
    lanes.total += kLanes8;

    const __m256i conf = simd::conflict_epi32_avx2(vcomm);
    const unsigned first = simd::conflict_free_bits8(conf, m);
    const __m256i vfirst = mask_from_bits8(first);

    // Vector pass over the write-safe set.
    const __m256 cur = _mm256_mask_i32gather_ps(
        _mm256_setzero_ps(), table, vcomm, _mm256_castsi256_ps(vfirst), 4);
    record_first_touch(
        aff,
        first & static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_cmp_ps(cur, _mm256_setzero_ps(), _CMP_EQ_OQ))),
        vcomm);
    const __m256 sum = _mm256_add_ps(cur, vw);
    simd::scatter_ps_avx2(table, first, vcomm, sum);

    // Remaining lanes (duplicate communities) finish scalar.
    const unsigned pending = m & ~first;
    tally.add(6, 2 * __builtin_popcount(first), __builtin_popcount(first),
              3 * __builtin_popcount(pending));
    unsigned bits = pending;
    while (bits != 0u) {
      const int lane = __builtin_ctz(bits);
      const CommunityId c = zeta[adj[i + lane]];
      aff.note(c);
      table[c] += wgt[i + lane];
      bits &= bits - 1;
    }
  }
}

/// Affinity accumulation with the in-vector-reduction reduce-scatter.
void accumulate_compress(const MoveCtx& ctx, VertexId u, DenseAffinity& aff,
                         simd::OpTally& tally, LaneUse& lanes) {
  const Graph& g = *ctx.g;
  const CommunityId* zeta = ctx.zeta->data();
  float* table = aff.data();

  const auto b = g.offset(u);
  const auto deg = g.degree(u);
  const VertexId* adj = g.adjacency_data() + b;
  const float* wgt = g.weights_data() + b;
  const __m256i vu = _mm256_set1_epi32(u);

  for (std::int64_t i = 0; i < deg; i += kLanes8) {
    const unsigned tail = tail_bits8(deg - i);
    const __m256i tailm = mask_from_bits8(tail);
    const __m256i vnbr = simd::maskload_epi32_avx2(adj + i, tailm);
    const unsigned m =
        tail & ~bits_from_mask8(_mm256_cmpeq_epi32(vnbr, vu));
    if (m == 0u) continue;
    const __m256i vm = mask_from_bits8(m);
    const __m256 vw = simd::maskload_ps_avx2(wgt + i, tailm);
    const __m256i vcomm =
        _mm256_mask_i32gather_epi32(neg_lanes8(), zeta, vnbr, vm, 4);
    lanes.active += __builtin_popcount(m);
    lanes.total += kLanes8;

    // Reduce the first active lane's community in-vector; the rest of
    // the lanes (other communities) finish scalar.
    const int lane0 = __builtin_ctz(m);
    const CommunityId c0 = zeta[adj[i + lane0]];
    const unsigned match =
        m & bits_from_mask8(_mm256_cmpeq_epi32(vcomm, _mm256_set1_epi32(c0)));
    const float s = simd::reduce_add_masked_ps8(vw, mask_from_bits8(match));
    aff.note(c0);
    table[c0] += s;

    const unsigned rest = m & ~match;
    tally.add(5, __builtin_popcount(m), 0, 3 * __builtin_popcount(rest) + 1);
    unsigned bits = rest;
    while (bits != 0u) {
      const int lane = __builtin_ctz(bits);
      const CommunityId c = zeta[adj[i + lane]];
      aff.note(c);
      table[c] += wgt[i + lane];
      bits &= bits - 1;
    }
  }
}

}  // namespace

MoveStats move_phase_onpl_avx2(const MoveCtx& ctx) {
  const Graph& g = *ctx.g;
  const auto n = g.num_vertices();
  MoveStats stats;
  WallTimer timer;
  const std::int64_t scalar_below =
      ctx.degree_threshold >= 0 ? ctx.degree_threshold : kLanes8;

  auto& reg = telemetry::Registry::global();
  const bool telem = reg.enabled();
  telemetry::MetricId id_moves_iter = 0, id_iter_conflict = 0,
                      id_iter_compress = 0, id_vert_scalar = 0,
                      id_vert_vector = 0, id_lanes_active = 0,
                      id_lanes_total = 0;
  if (telem) {
    id_moves_iter = reg.series("louvain.onpl.moves_per_iter");
    id_iter_conflict = reg.counter("louvain.onpl.iterations.conflict");
    id_iter_compress = reg.counter("louvain.onpl.iterations.compress");
    id_vert_scalar = reg.counter("louvain.onpl.vertices.scalar");
    id_vert_vector = reg.counter("louvain.onpl.vertices.vector");
    id_lanes_active = reg.counter("louvain.onpl.gather_lanes_active");
    id_lanes_total = reg.counter("louvain.onpl.gather_lanes_total");
  }

  double last_move_fraction = 1.0;
  for (int iter = 0; iter < ctx.max_iterations; ++iter) {
    if (ctx.deadline.expired()) {
      stats.hit_deadline = true;
      break;
    }
    const bool use_compress =
        ctx.rs_policy == RsPolicy::Compress ||
        (ctx.rs_policy == RsPolicy::Auto && last_move_fraction < 0.02);
    if (use_compress && stats.compress_switch_iteration < 0) {
      stats.compress_switch_iteration = iter;
    }
    std::atomic<std::int64_t> moves{0};

    // One span per sweep: the reduce-scatter method is fixed for the
    // whole iteration, so the span name carries it.
    telemetry::TraceSpan rs_span(use_compress ? "onpl.rs.compress"
                                              : "onpl.rs.conflict");
    rs_span.arg("iter", iter);
    rs_span.arg_str("backend", "avx2");

    parallel_for(0, n, ctx.grain, Placement::kBySocket,
                 [&](std::int64_t first, std::int64_t last) {
      thread_local DenseAffinity aff_storage;
      DenseAffinity& aff = aff_storage;
      aff.ensure(n);
      simd::OpTally tally;
      LaneUse lanes;
      std::int64_t local_moves = 0;
      std::int64_t scalar_verts = 0, vector_verts = 0;
      const auto aff_of = [&aff](CommunityId c) {
        return static_cast<double>(aff.get(c));
      };
      for (std::int64_t vi = first; vi < last; ++vi) {
        const auto u = static_cast<VertexId>(vi);
        const auto deg = g.degree(u);
        if (deg == 0) continue;
        // Hybrid dispatch: below the cutoff (default: one 8-lane vector)
        // the gathers cannot pay for themselves.
        if (deg < scalar_below) {
          ++scalar_verts;
          accumulate_affinity_scalar(g, *ctx.zeta, u, aff);
          tally.add(0, 0, 0, 2 * static_cast<int>(deg));
          if (decide_and_move(ctx, u, aff.touched(), aff_of)) ++local_moves;
          aff.reset();
          continue;
        }
        ++vector_verts;
        if (use_compress) {
          accumulate_compress(ctx, u, aff, tally, lanes);
        } else {
          accumulate_conflict(ctx, u, aff, tally, lanes);
        }
        tally.add(0, 0, 0, 3 * static_cast<int>(aff.touched().size()));
        if (decide_and_move(ctx, u, aff.touched(), aff_of)) ++local_moves;
        aff.reset();
      }
      tally.flush();
      if (telem) {
        reg.add(id_vert_scalar, static_cast<double>(scalar_verts));
        reg.add(id_vert_vector, static_cast<double>(vector_verts));
        reg.add(id_lanes_active, static_cast<double>(lanes.active));
        reg.add(id_lanes_total, static_cast<double>(lanes.total));
      }
      moves.fetch_add(local_moves, std::memory_order_relaxed);
    });

    rs_span.arg("moves", moves.load());

    ++stats.iterations;
    stats.total_moves += moves.load();
    stats.moves_per_iteration.push_back(moves.load());
    if (telem) {
      reg.append(id_moves_iter, static_cast<double>(moves.load()));
      reg.add(use_compress ? id_iter_compress : id_iter_conflict, 1.0);
    }
    last_move_fraction =
        static_cast<double>(moves.load()) / static_cast<double>(n);
    if (moves.load() == 0) break;
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace vgp::community
