#include "vgp/community/partition.hpp"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace vgp::community {

std::vector<CommunityId> singleton_partition(std::int64_t n) {
  std::vector<CommunityId> zeta(static_cast<std::size_t>(n));
  std::iota(zeta.begin(), zeta.end(), 0);
  return zeta;
}

std::int64_t compact_labels(std::vector<CommunityId>& zeta) {
  std::unordered_map<CommunityId, CommunityId> remap;
  remap.reserve(zeta.size() / 4 + 1);
  CommunityId next = 0;
  for (auto& z : zeta) {
    const auto [it, inserted] = remap.try_emplace(z, next);
    if (inserted) ++next;
    z = it->second;
  }
  return next;
}

std::int64_t count_communities(const std::vector<CommunityId>& zeta) {
  std::unordered_map<CommunityId, bool> seen;
  seen.reserve(zeta.size() / 4 + 1);
  for (CommunityId z : zeta) seen.try_emplace(z, true);
  return static_cast<std::int64_t>(seen.size());
}

std::vector<std::int64_t> community_sizes(const std::vector<CommunityId>& zeta,
                                          std::int64_t k) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(k), 0);
  for (CommunityId z : zeta) {
    if (z < 0 || z >= k) throw std::out_of_range("community label not compact");
    ++sizes[static_cast<std::size_t>(z)];
  }
  return sizes;
}

std::vector<double> community_volumes(const Graph& g,
                                      const std::vector<CommunityId>& zeta,
                                      std::int64_t k) {
  std::vector<double> vol(static_cast<std::size_t>(k), 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const CommunityId z = zeta[static_cast<std::size_t>(u)];
    if (z < 0 || z >= k) throw std::out_of_range("community label not compact");
    vol[static_cast<std::size_t>(z)] += g.volume(u);
  }
  return vol;
}

bool same_partition(const std::vector<CommunityId>& a,
                    const std::vector<CommunityId>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<CommunityId, CommunityId> fwd, rev;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [fit, finserted] = fwd.try_emplace(a[i], b[i]);
    if (!finserted && fit->second != b[i]) return false;
    const auto [rit, rinserted] = rev.try_emplace(b[i], a[i]);
    if (!rinserted && rit->second != a[i]) return false;
  }
  return true;
}

}  // namespace vgp::community
