#include "vgp/community/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace vgp::community {

std::vector<CommunityId> singleton_partition(std::int64_t n) {
  std::vector<CommunityId> zeta(static_cast<std::size_t>(n));
  std::iota(zeta.begin(), zeta.end(), 0);
  return zeta;
}

std::int64_t compact_labels(std::vector<CommunityId>& zeta) {
  if (zeta.empty()) return 0;
  CommunityId min_label = zeta[0];
  CommunityId max_label = zeta[0];
  for (CommunityId z : zeta) {
    min_label = std::min(min_label, z);
    max_label = std::max(max_label, z);
  }

  // Dense remap table. Louvain labels are always vertex ids, so the label
  // space is bounded by the vertex count and the table is small; coarsen()
  // runs this on its hot path, where the hash map this replaces cost more
  // than the whole tuple scatter.
  const std::int64_t span = static_cast<std::int64_t>(max_label) + 1;
  const std::int64_t cap =
      std::max<std::int64_t>(4 * static_cast<std::int64_t>(zeta.size()), 1024);
  if (min_label >= 0 && span <= cap) {
    std::vector<CommunityId> remap(static_cast<std::size_t>(span), -1);
    CommunityId next = 0;
    for (auto& z : zeta) {
      CommunityId& slot = remap[static_cast<std::size_t>(z)];
      if (slot < 0) slot = next++;
      z = slot;
    }
    return next;
  }

  // Sparse or negative label space: order-preserving compaction through a
  // sorted (label, first index) table instead of a hash map.
  std::vector<std::pair<CommunityId, std::int64_t>> first;
  first.reserve(zeta.size());
  for (std::size_t i = 0; i < zeta.size(); ++i) {
    first.emplace_back(zeta[i], static_cast<std::int64_t>(i));
  }
  std::sort(first.begin(), first.end());
  first.erase(std::unique(first.begin(), first.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              first.end());
  // `first` is label-sorted with each label's earliest position; rank the
  // labels by first appearance to keep the historical id order.
  std::vector<std::int64_t> order(first.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return first[static_cast<std::size_t>(a)].second <
           first[static_cast<std::size_t>(b)].second;
  });
  std::vector<CommunityId> rank(first.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<CommunityId>(i);
  }
  for (auto& z : zeta) {
    const auto it = std::lower_bound(
        first.begin(), first.end(), z,
        [](const auto& a, CommunityId v) { return a.first < v; });
    z = rank[static_cast<std::size_t>(it - first.begin())];
  }
  return static_cast<std::int64_t>(first.size());
}

std::int64_t count_communities(const std::vector<CommunityId>& zeta) {
  std::unordered_map<CommunityId, bool> seen;
  seen.reserve(zeta.size() / 4 + 1);
  for (CommunityId z : zeta) seen.try_emplace(z, true);
  return static_cast<std::int64_t>(seen.size());
}

std::vector<std::int64_t> community_sizes(const std::vector<CommunityId>& zeta,
                                          std::int64_t k) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(k), 0);
  for (CommunityId z : zeta) {
    if (z < 0 || z >= k) throw std::out_of_range("community label not compact");
    ++sizes[static_cast<std::size_t>(z)];
  }
  return sizes;
}

std::vector<double> community_volumes(const Graph& g,
                                      const std::vector<CommunityId>& zeta,
                                      std::int64_t k) {
  std::vector<double> vol(static_cast<std::size_t>(k), 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const CommunityId z = zeta[static_cast<std::size_t>(u)];
    if (z < 0 || z >= k) throw std::out_of_range("community label not compact");
    vol[static_cast<std::size_t>(z)] += g.volume(u);
  }
  return vol;
}

bool same_partition(const std::vector<CommunityId>& a,
                    const std::vector<CommunityId>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<CommunityId, CommunityId> fwd, rev;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [fit, finserted] = fwd.try_emplace(a[i], b[i]);
    if (!finserted && fit->second != b[i]) return false;
    const auto [rit, rinserted] = rev.try_emplace(b[i], a[i]);
    if (!rinserted && rit->second != a[i]) return false;
  }
  return true;
}

}  // namespace vgp::community
