// Partition quality metrics beyond modularity.
//
// Used by the tests (agreement with planted ground truth), the examples
// (community profiling), and anyone evaluating the detected communities:
//   * coverage            — intra-community edge weight fraction;
//   * conductance         — per-community cut quality (plus aggregates);
//   * adjusted Rand index — chance-corrected agreement of two partitions;
//   * normalized mutual information — information-theoretic agreement.
#pragma once

#include <vector>

#include "vgp/community/partition.hpp"
#include "vgp/graph/csr.hpp"

namespace vgp::community {

/// Fraction of total edge weight that falls inside communities (self-loops
/// count as intra). In [0, 1]; 1 for the all-in-one partition.
double coverage(const Graph& g, const std::vector<CommunityId>& zeta);

/// Conductance of one community C: cut(C, V\C) / min(vol(C), vol(V\C)).
/// 0 = perfectly separated, 1 = all edges leave. Returns 0 for an empty
/// or full community (no meaningful cut).
double conductance(const Graph& g, const std::vector<CommunityId>& zeta,
                   CommunityId c);

struct ConductanceSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;          // unweighted over communities
  double weighted_mean = 0.0; // weighted by community volume
};

/// Conductance over all communities of a compact-labeled partition.
ConductanceSummary conductance_summary(const Graph& g,
                                       const std::vector<CommunityId>& zeta,
                                       std::int64_t k);

/// Adjusted Rand index between two labelings of the same vertex set.
/// 1 = identical grouping, ~0 = random agreement; can be negative.
double adjusted_rand_index(const std::vector<CommunityId>& a,
                           const std::vector<CommunityId>& b);

/// Normalized mutual information (arithmetic normalization) in [0, 1].
double normalized_mutual_information(const std::vector<CommunityId>& a,
                                     const std::vector<CommunityId>& b);

}  // namespace vgp::community
