// Shared state for one Louvain move phase (paper Algorithm 4).
//
// All move-phase variants (PLM, MPLM, ONPL, OVPL) operate on the same
// context: the community assignment zeta, per-vertex volumes, per-community
// volumes (atomic — adjacent vertices may move concurrently, the benign
// races the paper discusses), and the total edge weight omega. They differ
// only in how the per-vertex affinity map is computed.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "vgp/community/modularity.hpp"
#include "vgp/community/partition.hpp"
#include "vgp/fault/guard.hpp"
#include "vgp/graph/csr.hpp"
#include "vgp/simd/backend.hpp"

namespace vgp::community {

/// Which reduce-scatter implementation the ONPL affinity kernel uses.
/// Auto follows the paper's guidance: conflict detection while moves are
/// frequent (many distinct neighbor communities per vector), in-vector
/// reduction once the partition has mostly converged.
enum class RsPolicy { Auto, Conflict, Compress };

struct MoveCtx {
  const Graph* g = nullptr;
  std::vector<CommunityId>* zeta = nullptr;     // labels in [0, n)
  /// Per-community volume, size n. Writers use std::atomic_ref; the vector
  /// kernels gather the raw doubles (the benign-race reads the paper's
  /// optimistic PLM relies on).
  std::vector<double>* comm_volume = nullptr;
  const std::vector<double>* vertex_volume = nullptr;  // size n
  double omega = 0.0;
  /// PLM stops after 25 iterations whether converged or not (paper §3.2).
  int max_iterations = 25;
  std::int64_t grain = 256;
  RsPolicy rs_policy = RsPolicy::Auto;
  /// Hybrid degree cutoff for the vector move kernels: vertices with
  /// degree < degree_threshold run the scalar per-vertex path (affinity
  /// accumulation + decide_and_move), vertices at or above it run the
  /// vector lanes. -1 keeps each kernel's built-in default (one vector
  /// width: 16 for AVX-512, 8 for AVX2); 0 forces everything through the
  /// vector path; a huge value forces the scalar path for every vertex.
  /// Scalar policies (PLM/MPLM) ignore it. Usually filled from the active
  /// ExecutionPlan via simd::Selected::degree_threshold.
  std::int64_t degree_threshold = -1;
  /// Optional wall-clock guard: every move-phase variant polls it once
  /// per sweep and stops early (MoveStats::hit_deadline) when it
  /// expires, leaving zeta at the best partition found so far.
  fault::Deadline deadline;
};

struct MoveStats {
  int iterations = 0;
  std::int64_t total_moves = 0;
  double seconds = 0.0;
  /// OVPL only: layout construction time (coloring + blocking).
  double preprocess_seconds = 0.0;
  /// Moves applied by each iteration (size == iterations) — the decay
  /// curve the paper's per-kernel figures are built from.
  std::vector<std::int64_t> moves_per_iteration;
  /// ONPL RsPolicy::Auto: first iteration (0-based) that used the
  /// in-vector-reduction reduce-scatter; -1 when it never switched.
  int compress_switch_iteration = -1;
  /// Backend tier that actually executed the phase (ONPL/OVPL: filled by
  /// run_move_phase / move_phase_ovpl from the dispatch registry; the
  /// scalar policies report Scalar).
  simd::Backend backend = simd::Backend::Scalar;
  /// Non-null (static string) when the dispatch degraded below the
  /// requested/resolved tier — e.g. "avx512-not-supported-by-cpu" when an
  /// ONPL request ran the scalar MPLM loop instead. Mirrors the
  /// `dispatch.fallback.*` telemetry counters.
  const char* fallback_reason = nullptr;
  /// True when MoveCtx::deadline expired and the phase stopped before
  /// max_iterations / convergence. zeta is still a valid partition.
  bool hit_deadline = false;
};

/// Builds the ctx-owned arrays for a fresh singleton start on g.
struct MoveState {
  std::vector<CommunityId> zeta;
  std::vector<double> comm_volume;
  std::vector<double> vertex_volume;
  double omega = 0.0;
};

inline MoveState make_move_state(const Graph& g) {
  MoveState s;
  s.zeta = singleton_partition(g.num_vertices());
  s.vertex_volume = g.volumes();
  s.comm_volume = s.vertex_volume;  // singleton: vol(C) = vol(u)
  s.omega = g.total_edge_weight();
  return s;
}

inline MoveCtx make_move_ctx(const Graph& g, MoveState& s) {
  MoveCtx ctx;
  ctx.g = &g;
  ctx.zeta = &s.zeta;
  ctx.comm_volume = &s.comm_volume;
  ctx.vertex_volume = &s.vertex_volume;
  ctx.omega = s.omega;
  return ctx;
}

inline CommunityId zeta_of(const MoveCtx& ctx, VertexId v) {
  return (*ctx.zeta)[static_cast<std::size_t>(v)];
}

/// Moves u from `cur` to `best`, updating community volumes atomically.
inline void apply_move(const MoveCtx& ctx, VertexId u, CommunityId cur,
                       CommunityId best, double vol_u) {
  auto& cvol = *ctx.comm_volume;
  std::atomic_ref<double>(cvol[static_cast<std::size_t>(cur)])
      .fetch_sub(vol_u, std::memory_order_relaxed);
  std::atomic_ref<double>(cvol[static_cast<std::size_t>(best)])
      .fetch_add(vol_u, std::memory_order_relaxed);
  (*ctx.zeta)[static_cast<std::size_t>(u)] = best;
}

/// Applies the best-gain decision for u given its affinity map (touched
/// candidate communities + their affinities). Returns true when u moved.
/// `aff_of` must return the accumulated edge weight from u to a community.
template <typename AffFn>
bool decide_and_move(const MoveCtx& ctx, VertexId u,
                     const std::vector<CommunityId>& candidates,
                     const AffFn& aff_of) {
  auto& zeta = *ctx.zeta;
  auto& cvol = *ctx.comm_volume;
  const CommunityId cur = zeta[static_cast<std::size_t>(u)];
  const double aff_cur = aff_of(cur);
  const double vol_u = (*ctx.vertex_volume)[static_cast<std::size_t>(u)];
  const double vol_cur = cvol[static_cast<std::size_t>(cur)];

  double best_delta = 0.0;
  CommunityId best = cur;
  for (const CommunityId c : candidates) {
    if (c == cur) continue;
    const double delta =
        modularity_gain(aff_of(c), aff_cur, vol_cur,
                        cvol[static_cast<std::size_t>(c)], vol_u, ctx.omega);
    // Deterministic tie-break on label keeps single-thread runs stable.
    if (delta > best_delta || (delta == best_delta && delta > 0.0 && c < best)) {
      best_delta = delta;
      best = c;
    }
  }
  if (best == cur || best_delta <= 0.0) return false;
  apply_move(ctx, u, cur, best, vol_u);
  return true;
}

/// Dense affinity scratch with O(touched) reset — the MPLM fix. Also the
/// backing store the ONPL vector kernel gathers from / scatters into.
///
/// Membership in `touched_` is epoch-stamped, NOT inferred from
/// `val_[c] == 0.0f`: a zero-weight edge (or a sum that returns to
/// exactly 0.0f) would re-register the community and every consumer of
/// touched() — label-prop tie-breaking, the ONPL candidate scan — would
/// iterate duplicate candidates.
class DenseAffinity {
 public:
  void ensure(std::int64_t n) {
    if (val_.size() < static_cast<std::size_t>(n)) {
      val_.assign(static_cast<std::size_t>(n), 0.0f);
      mark_.assign(static_cast<std::size_t>(n), 0);
      epoch_ = 1;
      touched_.clear();
    }
    touched_.reserve(64);
  }

  /// Registers c as touched at most once per reset() cycle; returns true
  /// on the first touch. The vector kernels call this for the lanes whose
  /// gathered affinity was zero (a superset of the genuine first touches).
  bool note(CommunityId c) {
    if (mark_[static_cast<std::size_t>(c)] == epoch_) return false;
    mark_[static_cast<std::size_t>(c)] = epoch_;
    touched_.push_back(c);
    return true;
  }

  void add(CommunityId c, float w) {
    note(c);
    val_[static_cast<std::size_t>(c)] += w;
  }

  float get(CommunityId c) const { return val_[static_cast<std::size_t>(c)]; }

  void reset() {
    for (const CommunityId c : touched_) val_[static_cast<std::size_t>(c)] = 0.0f;
    touched_.clear();
    if (++epoch_ == 0) {  // wraparound: stale marks must not alias epoch 0
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
  }

  float* data() { return val_.data(); }
  std::vector<CommunityId>& touched() { return touched_; }
  const std::vector<CommunityId>& touched() const { return touched_; }

 private:
  std::vector<float> val_;
  std::vector<std::uint32_t> mark_;
  std::vector<CommunityId> touched_;
  std::uint32_t epoch_ = 1;
};

/// Scalar affinity accumulation for u (self-loops excluded, per the
/// "\{u}" in the paper's gain formula).
inline void accumulate_affinity_scalar(const Graph& g,
                                       const std::vector<CommunityId>& zeta,
                                       VertexId u, DenseAffinity& aff) {
  const auto nbrs = g.neighbors(u);
  const auto ws = g.edge_weights(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == u) continue;
    aff.add(zeta[static_cast<std::size_t>(nbrs[i])], ws[i]);
  }
}

// Move-phase entry points (one translation unit each).
MoveStats move_phase_plm(const MoveCtx& ctx);   // churn baseline
MoveStats move_phase_mplm(const MoveCtx& ctx);  // preallocated scratch

// Grappolo-style race-free baseline: colors the graph, then moves one
// independent color class at a time (see move_colorsync.cpp).
MoveStats move_phase_colorsync(const MoveCtx& ctx,
                               simd::Backend backend = simd::Backend::Auto);

// ONPL vectorized move phases (16-lane / 8-lane). Declared
// unconditionally; defined only when the matching ISA TU is in the build.
// Dispatch through simd::select<OnplMoveKernel> — never name these
// directly outside the simd registration units.
MoveStats move_phase_onpl_avx512(const MoveCtx& ctx);
MoveStats move_phase_onpl_avx2(const MoveCtx& ctx);

/// Registry tag for the ONPL move family. The scalar slot is
/// move_phase_mplm — the algorithm ONPL degenerates to without vector
/// lanes — so a fallback is visible in MoveStats::backend/fallback_reason
/// rather than silently changing behavior.
struct OnplMoveKernel {
  static constexpr const char* name = "louvain.onpl";
  using Fn = MoveStats (*)(const MoveCtx&);
};

}  // namespace vgp::community
