// Canonical coarse-tuple emission, 16 neighbors per iteration. The scalar
// loop's `if (v < u) continue` mispredicts on roughly half the arcs of a
// symmetric CSR; here the comparison becomes a lane mask, the community
// map is read with a masked gather, min/max canonicalize the endpoint
// pair, and _mm512_mask_compressstoreu packs the surviving lanes — the
// same compress discipline the paper leans on for its move-phase kernels.
// Because rows are sorted, the dropped half v < u is a prefix of each
// row: its vectors produce an all-zero keep mask and skip the gather and
// stores entirely, so hub rows pay little for their mirrored half. The
// hash aggregator this pipeline replaces has no vector form at all,
// which is exactly why the sort-based formulation wins.
//
// Compiled with -mavx512f -mavx512cd. Emission order is identical to
// coarsen_emit_scalar lane for lane; the coarsening pipeline's
// bit-determinism depends on that.
#include "vgp/community/coarsen.hpp"
#include "vgp/simd/avx512_common.hpp"

namespace vgp::community::detail {

std::int64_t coarsen_emit_avx512(const std::uint64_t* offsets,
                                 const VertexId* adj, const float* weights,
                                 std::int64_t first_row, std::int64_t last_row,
                                 const CommunityId* map, VertexId* out_a,
                                 VertexId* out_b, float* out_w) {
  simd::OpTally tally;
  std::int64_t pos = 0;
  for (std::int64_t u = first_row; u < last_row; ++u) {
    const auto b = static_cast<std::int64_t>(offsets[u]);
    const auto e = static_cast<std::int64_t>(offsets[u + 1]);
    const __m512i vu = _mm512_set1_epi32(static_cast<int>(u));
    const __m512i vcu = _mm512_set1_epi32(map[u]);
    for (std::int64_t i = b; i < e; i += simd::kLanes) {
      const __mmask16 tail = simd::tail_mask16(e - i);
      const __m512i vn = _mm512_maskz_loadu_epi32(tail, adj + i);
      // Keep the canonical half: v >= u (signed). Masked-off tail lanes
      // hold zero and drop out of `tail` before the compare.
      const __mmask16 keep =
          _mm512_mask_cmp_epi32_mask(tail, vn, vu, _MM_CMPINT_NLT);
      if (keep == 0) continue;  // entirely inside the mirrored prefix
      const __m512i vcv = _mm512_mask_i32gather_epi32(_mm512_setzero_si512(),
                                                      keep, vn, map, 4);
      const __m512i va = _mm512_min_epi32(vcu, vcv);
      const __m512i vb = _mm512_max_epi32(vcu, vcv);
      const __m512 vw = _mm512_maskz_loadu_ps(tail, weights + i);
      _mm512_mask_compressstoreu_epi32(out_a + pos, keep, va);
      _mm512_mask_compressstoreu_epi32(out_b + pos, keep, vb);
      _mm512_mask_compressstoreu_ps(out_w + pos, keep, vw);
      const int kept = __builtin_popcount(keep);
      pos += kept;
      tally.add(/*vops=*/8, /*glanes=*/kept, /*slanes=*/0, /*sops=*/1);
    }
  }
  tally.flush();
  return pos;
}

}  // namespace vgp::community::detail
