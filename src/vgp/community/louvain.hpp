// Multilevel Louvain driver (paper §3.2) parameterized over the
// move-phase implementation:
//
//   PLM   — NetworKit-faithful baseline including its per-vertex
//           allocation churn (the behavior MPLM fixes);
//   MPLM  — Modified PLM: same algorithm, preallocated per-thread scratch;
//   ONPL  — One Neighbor Per Lane vector kernel (requires AVX-512F+CD at
//           runtime; silently falls back to MPLM otherwise);
//   OVPL  — One Vertex Per Lane: blocked layout built by a coloring-based
//           preprocessing pass (see ovpl.hpp), then a blocked vector move;
//   ColorSync — Grappolo-style race-free baseline: one coloring class
//           moved at a time (deterministic given one thread per class).
//
// The driver alternates Move and Coarsening phases until no merge happens
// or max_levels is reached, then reports the flattened communities and
// their modularity. Timings separate the level-0 move phase (the paper's
// headline measurement: "the runtime of PLM is mostly dictated by the
// first move phase") from the rest.
#pragma once

#include <string>
#include <vector>

#include "vgp/community/move_ctx.hpp"
#include "vgp/community/partition.hpp"
#include "vgp/graph/csr.hpp"
#include "vgp/simd/backend.hpp"

namespace vgp::community {

enum class MovePolicy { PLM, MPLM, ONPL, OVPL, ColorSync };

const char* move_policy_name(MovePolicy p);
MovePolicy parse_move_policy(const std::string& name);

struct LouvainOptions {
  MovePolicy policy = MovePolicy::MPLM;
  RsPolicy rs_policy = RsPolicy::Auto;
  simd::Backend backend = simd::Backend::Auto;
  /// PLM-style cap on move-phase sweeps per level.
  int max_move_iterations = 25;
  int max_levels = 20;
  /// When false, only the level-0 move phase runs (what the paper times).
  bool full_multilevel = true;
  std::int64_t grain = 256;
  /// OVPL block size; must be a multiple of 16.
  int ovpl_block_size = 16;
  /// Wall-clock budget for the whole run; <= 0 disables. When it
  /// expires the driver stops after the current sweep, flattens the
  /// partition found so far, and flags the result degraded.
  double deadline_seconds = 0.0;
  /// Cumulative move-sweep budget across all levels; <= 0 disables.
  /// Exhaustion degrades the same way the deadline does.
  std::int64_t iteration_budget = 0;
  /// Hybrid degree cutoff for the vector move kernels (see
  /// MoveCtx::degree_threshold). -1 defers to the active ExecutionPlan,
  /// then to the kernel default of one vector width.
  std::int64_t degree_threshold = -1;
  /// When false, coarsening uses the sequential map-aggregation fallback
  /// (coarsen_reference) instead of the parallel pipeline — the execution
  /// planner turns the pipeline off on graphs too small to amortize its
  /// bucket setup.
  bool coarsen_pipeline = true;
};

struct LouvainResult {
  std::vector<CommunityId> communities;  // compact labels on the input graph
  std::int64_t num_communities = 0;
  double modularity = 0.0;
  int levels = 0;
  std::vector<MoveStats> level_stats;
  /// Level-0 move-phase wall time (the paper's reported metric).
  double first_move_seconds = 0.0;
  /// OVPL preprocessing wall time (0 for other policies).
  double preprocess_seconds = 0.0;
  double total_seconds = 0.0;
  /// True when a deadline or iteration budget stopped the run early.
  /// `communities` is still a valid (flattened, compacted) partition —
  /// just not as refined as an unbounded run. Mirrored in telemetry as
  /// fault.degraded.louvain.<reason>.
  bool degraded = false;
  /// "deadline" or "iteration-budget" (static string; nullptr when not
  /// degraded).
  const char* degraded_reason = nullptr;
};

LouvainResult louvain(const Graph& g, const LouvainOptions& opts = {});

/// Runs one move phase with the chosen policy on ctx (used by the driver,
/// benches, and tests that need a single level).
MoveStats run_move_phase(const MoveCtx& ctx, MovePolicy policy,
                         simd::Backend backend, int ovpl_block_size = 16);

}  // namespace vgp::community
