#include "vgp/community/louvain.hpp"

#include <algorithm>
#include <stdexcept>

#include "vgp/community/coarsen.hpp"
#include "vgp/community/ovpl.hpp"
#include "vgp/fault/error.hpp"
#include "vgp/fault/failpoint.hpp"
#include "vgp/simd/registry.hpp"
#include "vgp/support/timer.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::community {

const char* move_policy_name(MovePolicy p) {
  switch (p) {
    case MovePolicy::PLM: return "plm";
    case MovePolicy::MPLM: return "mplm";
    case MovePolicy::ONPL: return "onpl";
    case MovePolicy::OVPL: return "ovpl";
    case MovePolicy::ColorSync: return "colorsync";
  }
  return "?";
}

MovePolicy parse_move_policy(const std::string& name) {
  if (name == "plm") return MovePolicy::PLM;
  if (name == "mplm") return MovePolicy::MPLM;
  if (name == "onpl") return MovePolicy::ONPL;
  if (name == "ovpl") return MovePolicy::OVPL;
  if (name == "colorsync") return MovePolicy::ColorSync;
  throw ValidationError(ErrorCode::InvalidArgument,
                        "unknown move policy: " + name,
                        {.hint = "known policies: plm, mplm, onpl, ovpl, "
                                 "colorsync"});
}

MoveStats run_move_phase(const MoveCtx& ctx, MovePolicy policy,
                         simd::Backend backend, int ovpl_block_size) {
  switch (policy) {
    case MovePolicy::PLM:
      return move_phase_plm(ctx);
    case MovePolicy::MPLM:
      return move_phase_mplm(ctx);
    case MovePolicy::ONPL: {
      // The registry picks the widest available tier (the scalar slot is
      // the MPLM loop ONPL degenerates to) and reports what it did: a
      // degraded dispatch shows up in MoveStats and in the
      // dispatch.fallback.* counters, never silently.
      const auto sel = simd::select<OnplMoveKernel>(backend);
      // Callers that set an explicit cutoff keep it; otherwise adopt the
      // active plan's (still -1 when no plan is installed).
      MoveCtx run_ctx = ctx;
      if (run_ctx.degree_threshold < 0) {
        run_ctx.degree_threshold = sel.degree_threshold;
      }
      auto stats = sel.fn(run_ctx);
      stats.backend = sel.backend;
      stats.fallback_reason = sel.fallback_reason;
      return stats;
    }
    case MovePolicy::ColorSync:
      return move_phase_colorsync(ctx, backend);
    case MovePolicy::OVPL: {
      OvplOptions oopts;
      oopts.block_size = ovpl_block_size;
      oopts.backend = backend;
      const auto layout = ovpl_preprocess(*ctx.g, oopts);
      auto stats = move_phase_ovpl(ctx, layout, backend);
      stats.preprocess_seconds = layout.preprocess_seconds;
      return stats;
    }
  }
  throw InternalError(ErrorCode::ContractViolation, "unreachable move policy");
}

LouvainResult louvain(const Graph& g, const LouvainOptions& opts) {
  LouvainResult res;
  WallTimer total_timer;

  const auto n = g.num_vertices();
  res.communities = singleton_partition(n);
  if (n == 0) return res;

  // `current` holds the level graph; level 0 runs directly on g.
  Graph coarse_storage;
  const Graph* current = &g;

  const fault::Deadline deadline =
      fault::Deadline::after_seconds(opts.deadline_seconds);
  std::int64_t sweeps_used = 0;

  for (int level = 0; level < opts.max_levels; ++level) {
    VGP_FAILPOINT("louvain.level");
    telemetry::TraceSpan level_span("louvain.level");
    level_span.arg("level", level);
    level_span.arg("vertices", current->num_vertices());
    level_span.arg_str("policy", move_policy_name(opts.policy));

    MoveState state = make_move_state(*current);
    MoveCtx ctx = make_move_ctx(*current, state);
    ctx.max_iterations = opts.max_move_iterations;
    ctx.grain = opts.grain;
    ctx.rs_policy = opts.rs_policy;
    ctx.degree_threshold = opts.degree_threshold;
    ctx.deadline = deadline;
    if (opts.iteration_budget > 0) {
      // The degraded-break below guarantees at least one sweep remains.
      const std::int64_t remaining = opts.iteration_budget - sweeps_used;
      ctx.max_iterations = static_cast<int>(std::min<std::int64_t>(
          ctx.max_iterations, remaining));
    }

    MoveStats stats;
    {
      telemetry::ScopedPhase phase("louvain.move");
      stats =
          run_move_phase(ctx, opts.policy, opts.backend, opts.ovpl_block_size);
      phase.span().arg("iterations", stats.iterations);
      phase.span().arg("moves", stats.total_moves);
      phase.span().arg_str("backend", simd::backend_name(stats.backend));
      if (stats.fallback_reason != nullptr) {
        phase.span().arg_str("fallback", stats.fallback_reason);
      }
    }
    level_span.arg("moves", stats.total_moves);
    if (level == 0) {
      res.first_move_seconds = stats.seconds;
      res.preprocess_seconds = stats.preprocess_seconds;
    }
    res.level_stats.push_back(stats);
    ++res.levels;
    sweeps_used += stats.iterations;

    const std::int64_t k = compact_labels(state.zeta);

    // Flatten: map every original vertex through this level's partition.
    for (auto& c : res.communities) {
      c = state.zeta[static_cast<std::size_t>(c)];
    }

    // Graceful degradation: the flatten above already folded this
    // level's progress in, so stopping here returns the best partition
    // found so far rather than an unbounded run.
    const bool budget_out = opts.iteration_budget > 0 &&
                            sweeps_used >= opts.iteration_budget;
    if (stats.hit_deadline || deadline.expired() || budget_out) {
      res.degraded = true;
      res.degraded_reason = (stats.hit_deadline || deadline.expired())
                                ? "deadline"
                                : "iteration-budget";
      level_span.arg_str("degraded", res.degraded_reason);
      auto& reg = telemetry::Registry::global();
      if (reg.enabled()) {
        reg.add(reg.counter("fault.degraded"));
        reg.add(reg.counter(std::string("fault.degraded.louvain.") +
                            res.degraded_reason));
      }
    }

    if (!opts.full_multilevel) break;
    if (k == current->num_vertices()) break;  // no merges: converged
    if (res.degraded) break;

    telemetry::ScopedPhase coarsen_phase("louvain.coarsen");
    CoarseResult cr = opts.coarsen_pipeline
                          ? coarsen(*current, state.zeta)
                          : coarsen_reference(*current, state.zeta);
    coarse_storage = std::move(cr.graph);
    current = &coarse_storage;
    if (k <= 1) break;
  }

  res.num_communities = compact_labels(res.communities);
  res.modularity = modularity(g, res.communities);
  res.total_seconds = total_timer.seconds();
  return res;
}

}  // namespace vgp::community
