// ONPL (One Neighbor Per Lane) vectorized Louvain move phase (paper §4.2).
// Compiled with -mavx512f -mavx512cd.
//
// Per vertex u, 16 neighbors are processed per step: one vector load for
// the neighbor ids, one gather for their communities, then a
// *reduce-scatter* into the dense affinity table — duplicate communities
// inside the vector must have their edge weights combined before the
// scatter or updates would be lost. Two implementations (see
// simd/reduce_scatter.hpp): conflict detection (AVX-512CD) while the
// partition is still fluid, in-vector reduction once most neighbors share
// a community. RsPolicy::Auto switches from the former to the latter when
// the previous iteration moved under 2% of the vertices, following the
// paper's "conflict detection early, in-vector reduction near
// convergence" guidance.
//
// The modularity-gain scan over the candidate communities is also
// vectorized (double-precision lanes, 8 at a time), as the paper notes the
// affinity AND modularity calculations both vectorize once gather/scatter
// exist.
#include <atomic>
#include <cmath>
#include <limits>

#include "vgp/community/move_ctx.hpp"
#include "vgp/parallel/thread_pool.hpp"
#include "vgp/simd/avx512_common.hpp"
#include "vgp/support/timer.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::community {
namespace {

using simd::charge_vector_chunk;
using simd::kLanes;
using simd::tail_mask16;

/// Gather-lane occupancy for one worker chunk: `active` lanes carried a
/// real neighbor, out of `total` issued. Accumulated locally, flushed to
/// telemetry once per chunk — never from the 16-lane loop itself.
struct LaneUse {
  std::int64_t active = 0;
  std::int64_t total = 0;
};

// Lane sentinels for inactive gather lanes: distinct negative values so
// _mm512_conflict_epi32 never reports a false conflict against an active
// lane (community ids are always >= 0).
const __m512i kNegLanes = _mm512_setr_epi32(-1, -2, -3, -4, -5, -6, -7, -8,
                                            -9, -10, -11, -12, -13, -14, -15,
                                            -16);

/// Registers the communities of `mask` lanes whose gathered affinity was
/// exactly zero as touched candidates. A zero gathered value is only a
/// *candidate* first touch — a zero-weight edge leaves the sum at 0.0f on
/// a later revisit — so each one goes through DenseAffinity::note(),
/// whose epoch mark rejects duplicates exactly.
inline void record_first_touch(DenseAffinity& aff, __mmask16 zero_mask,
                               __m512i vcomm) {
  if (zero_mask == 0) return;
  alignas(64) CommunityId comm[kLanes];
  _mm512_mask_compressstoreu_epi32(comm, zero_mask, vcomm);
  const int cnt = __builtin_popcount(zero_mask);
  for (int i = 0; i < cnt; ++i) aff.note(comm[i]);
}

/// Affinity accumulation with the conflict-detection reduce-scatter.
void accumulate_conflict(const MoveCtx& ctx, VertexId u, DenseAffinity& aff,
                         bool slow, simd::OpTally& tally, LaneUse& lanes) {
  const Graph& g = *ctx.g;
  const CommunityId* zeta = ctx.zeta->data();
  float* table = aff.data();

  const auto b = g.offset(u);
  const auto deg = g.degree(u);
  const VertexId* adj = g.adjacency_data() + b;
  const float* wgt = g.weights_data() + b;
  const __m512i vu = _mm512_set1_epi32(u);

  for (std::int64_t i = 0; i < deg; i += kLanes) {
    const __mmask16 tail = tail_mask16(deg - i);
    const __m512i vnbr = _mm512_maskz_loadu_epi32(tail, adj + i);
    // Self-loop exclusion: the gain formula is over N(u) \ {u}.
    const __mmask16 m = _mm512_mask_cmpneq_epi32_mask(tail, vnbr, vu);
    const __m512 vw = _mm512_maskz_loadu_ps(tail, wgt + i);
    const __m512i vcomm =
        _mm512_mask_i32gather_epi32(kNegLanes, m, vnbr, zeta, 4);

    lanes.active += __builtin_popcount(m);
    lanes.total += kLanes;

    const __m512i conf = _mm512_conflict_epi32(vcomm);
    const __mmask16 first =
        _mm512_mask_cmpeq_epi32_mask(m, conf, _mm512_setzero_si512());

    // Vector pass over the write-safe set.
    const __m512 cur =
        _mm512_mask_i32gather_ps(_mm512_setzero_ps(), first, vcomm, table, 4);
    record_first_touch(
        aff, _mm512_mask_cmp_ps_mask(first, cur, _mm512_setzero_ps(), _CMP_EQ_OQ),
        vcomm);
    const __m512 sum = _mm512_add_ps(cur, vw);
    simd::scatter_ps(table, first, vcomm, sum, slow);

    // Remaining lanes (duplicate communities) finish scalar.
    __mmask16 pending = m & static_cast<__mmask16>(~first);
    tally.add(6, 2 * __builtin_popcount(first), __builtin_popcount(first),
              3 * __builtin_popcount(pending));
    unsigned bits = pending;
    while (bits != 0u) {
      const int lane = __builtin_ctz(bits);
      const CommunityId c = zeta[adj[i + lane]];
      aff.note(c);
      table[c] += wgt[i + lane];
      bits &= bits - 1;
    }
  }
}

/// Affinity accumulation with the in-vector-reduction reduce-scatter.
void accumulate_compress(const MoveCtx& ctx, VertexId u, DenseAffinity& aff,
                         simd::OpTally& tally, LaneUse& lanes) {
  const Graph& g = *ctx.g;
  const CommunityId* zeta = ctx.zeta->data();
  float* table = aff.data();

  const auto b = g.offset(u);
  const auto deg = g.degree(u);
  const VertexId* adj = g.adjacency_data() + b;
  const float* wgt = g.weights_data() + b;
  const __m512i vu = _mm512_set1_epi32(u);

  for (std::int64_t i = 0; i < deg; i += kLanes) {
    const __mmask16 tail = tail_mask16(deg - i);
    const __m512i vnbr = _mm512_maskz_loadu_epi32(tail, adj + i);
    const __mmask16 m = _mm512_mask_cmpneq_epi32_mask(tail, vnbr, vu);
    if (m == 0) continue;
    const __m512 vw = _mm512_maskz_loadu_ps(tail, wgt + i);
    const __m512i vcomm =
        _mm512_mask_i32gather_epi32(kNegLanes, m, vnbr, zeta, 4);
    lanes.active += __builtin_popcount(m);
    lanes.total += kLanes;

    // Reduce the first active lane's community in-vector; the rest of
    // the lanes (other communities) finish scalar — the paper's
    // production trade-off for mostly-converged vectors.
    const int lane0 = __builtin_ctz(static_cast<unsigned>(m));
    const CommunityId c0 = zeta[adj[i + lane0]];
    const __mmask16 match =
        _mm512_mask_cmpeq_epi32_mask(m, vcomm, _mm512_set1_epi32(c0));
    const float s = _mm512_mask_reduce_add_ps(match, vw);
    aff.note(c0);
    table[c0] += s;

    const __mmask16 rest = m & static_cast<__mmask16>(~match);
    tally.add(5, __builtin_popcount(m), 0, 3 * __builtin_popcount(rest) + 1);
    unsigned bits = rest;
    while (bits != 0u) {
      const int lane = __builtin_ctz(bits);
      const CommunityId c = zeta[adj[i + lane]];
      aff.note(c);
      table[c] += wgt[i + lane];
      bits &= bits - 1;
    }
  }
}

/// Vectorized best-community scan: evaluates the paper's gain formula in
/// 8 double lanes at a time over the touched candidate list. The current
/// community needs no special-casing — its gain evaluates to
/// -vol(u)^2/(2 omega^2) < 0 and can never win.
bool choose_and_move(const MoveCtx& ctx, VertexId u, DenseAffinity& aff,
                     simd::OpTally& tally) {
  const auto& touched = aff.touched();
  if (touched.empty()) return false;

  // A short candidate list cannot amortize the vector setup; the scalar
  // scan is strictly faster below one vector of candidates.
  if (touched.size() < static_cast<std::size_t>(kLanes)) {
    tally.add(0, 0, 0, 3 * static_cast<int>(touched.size()));
    const auto aff_of = [&aff](CommunityId c) {
      return static_cast<double>(aff.get(c));
    };
    return decide_and_move(ctx, u, touched, aff_of);
  }

  const CommunityId cur = zeta_of(ctx, u);
  const double aff_cur = static_cast<double>(aff.get(cur));
  const double vol_u = (*ctx.vertex_volume)[static_cast<std::size_t>(u)];
  const double vol_cur_less_u =
      (*ctx.comm_volume)[static_cast<std::size_t>(cur)] - vol_u;
  const double inv_omega = 1.0 / ctx.omega;
  const double vol_scale = vol_u / (2.0 * ctx.omega * ctx.omega);

  const float* table = aff.data();
  const double* cvol = ctx.comm_volume->data();

  const __m512d vaffcur = _mm512_set1_pd(aff_cur);
  const __m512d vinvw = _mm512_set1_pd(inv_omega);
  const __m512d vvolcur = _mm512_set1_pd(vol_cur_less_u);
  const __m512d vscale = _mm512_set1_pd(vol_scale);
  const __m512d vninf = _mm512_set1_pd(-std::numeric_limits<double>::infinity());

  __m512d best_delta_lo = vninf, best_delta_hi = vninf;
  __m512d best_cand_lo = _mm512_set1_pd(-1.0), best_cand_hi = _mm512_set1_pd(-1.0);

  const auto count = static_cast<std::int64_t>(touched.size());
  for (std::int64_t i = 0; i < count; i += kLanes) {
    const __mmask16 tail = tail_mask16(count - i);
    const __m512i vcand = _mm512_maskz_loadu_epi32(tail, touched.data() + i);
    const __m512 vaff16 = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), tail,
                                                   vcand, table, 4);

    const __m256i cand_lo = _mm512_castsi512_si256(vcand);
    const __m256i cand_hi = _mm256_castpd_si256(
        _mm512_extractf64x4_pd(_mm512_castsi512_pd(vcand), 1));
    const auto mlo = static_cast<__mmask8>(tail & 0xFF);
    const auto mhi = static_cast<__mmask8>(tail >> 8);

    const auto eval_half = [&](__m256i cand, __mmask8 mk, __m256 aff8,
                               __m512d& best_delta, __m512d& best_cand) {
      const __m512d vvolc = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mk,
                                                     cand, cvol, 8);
      const __m512d vaffc = _mm512_cvtps_pd(aff8);
      // delta = (aff_c - aff_cur)/omega + (volCur\u - vol_c) * scale
      __m512d vdelta = _mm512_add_pd(
          _mm512_mul_pd(_mm512_sub_pd(vaffc, vaffcur), vinvw),
          _mm512_mul_pd(_mm512_sub_pd(vvolcur, vvolc), vscale));
      vdelta = _mm512_mask_blend_pd(mk, vninf, vdelta);  // park unused lanes
      const __mmask8 gt = _mm512_cmp_pd_mask(vdelta, best_delta, _CMP_GT_OQ);
      best_delta = _mm512_mask_blend_pd(gt, best_delta, vdelta);
      best_cand = _mm512_mask_blend_pd(gt, best_cand,
                                       _mm512_cvtepi32_pd(cand));
    };

    const __m256 aff_lo = _mm512_castps512_ps256(vaff16);
    const __m256 aff_hi = _mm256_castpd_ps(
        _mm512_extractf64x4_pd(_mm512_castps_pd(vaff16), 1));
    eval_half(cand_lo, mlo, aff_lo, best_delta_lo, best_cand_lo);
    eval_half(cand_hi, mhi, aff_hi, best_delta_hi, best_cand_hi);
    tally.add(12, __builtin_popcount(tail) * 2, 0, 0);
  }

  // Horizontal resolution with the scalar tie-break (smaller label wins).
  alignas(64) double deltas[kLanes];
  alignas(64) double cands[kLanes];
  _mm512_store_pd(deltas, best_delta_lo);
  _mm512_store_pd(deltas + 8, best_delta_hi);
  _mm512_store_pd(cands, best_cand_lo);
  _mm512_store_pd(cands + 8, best_cand_hi);

  double best_delta = 0.0;
  CommunityId best = cur;
  for (int l = 0; l < kLanes; ++l) {
    if (cands[l] < 0.0) continue;
    const auto c = static_cast<CommunityId>(cands[l]);
    if (c == cur) continue;
    if (deltas[l] > best_delta ||
        (deltas[l] == best_delta && deltas[l] > 0.0 && c < best)) {
      best_delta = deltas[l];
      best = c;
    }
  }
  if (best == cur || best_delta <= 0.0) return false;
  apply_move(ctx, u, cur, best, vol_u);
  return true;
}

}  // namespace

MoveStats move_phase_onpl_avx512(const MoveCtx& ctx) {
  const Graph& g = *ctx.g;
  const auto n = g.num_vertices();
  MoveStats stats;
  WallTimer timer;
  const bool slow = simd::emulate_slow_scatter();
  const std::int64_t scalar_below =
      ctx.degree_threshold >= 0 ? ctx.degree_threshold : kLanes;

  auto& reg = telemetry::Registry::global();
  const bool telem = reg.enabled();
  telemetry::MetricId id_moves_iter = 0, id_iter_conflict = 0,
                      id_iter_compress = 0, id_vert_scalar = 0,
                      id_vert_vector = 0, id_lanes_active = 0,
                      id_lanes_total = 0;
  if (telem) {
    id_moves_iter = reg.series("louvain.onpl.moves_per_iter");
    id_iter_conflict = reg.counter("louvain.onpl.iterations.conflict");
    id_iter_compress = reg.counter("louvain.onpl.iterations.compress");
    id_vert_scalar = reg.counter("louvain.onpl.vertices.scalar");
    id_vert_vector = reg.counter("louvain.onpl.vertices.vector");
    id_lanes_active = reg.counter("louvain.onpl.gather_lanes_active");
    id_lanes_total = reg.counter("louvain.onpl.gather_lanes_total");
  }

  double last_move_fraction = 1.0;
  for (int iter = 0; iter < ctx.max_iterations; ++iter) {
    if (ctx.deadline.expired()) {
      stats.hit_deadline = true;
      break;
    }
    const bool use_compress =
        ctx.rs_policy == RsPolicy::Compress ||
        (ctx.rs_policy == RsPolicy::Auto && last_move_fraction < 0.02);
    if (use_compress && stats.compress_switch_iteration < 0) {
      stats.compress_switch_iteration = iter;
    }
    std::atomic<std::int64_t> moves{0};

    // One span per sweep: the reduce-scatter method is fixed for the
    // whole iteration, so the span name carries it.
    telemetry::TraceSpan rs_span(use_compress ? "onpl.rs.compress"
                                              : "onpl.rs.conflict");
    rs_span.arg("iter", iter);
    rs_span.arg_str("backend", "avx512");

    parallel_for(0, n, ctx.grain, Placement::kBySocket,
                 [&](std::int64_t first, std::int64_t last) {
      thread_local DenseAffinity aff_storage;
      DenseAffinity& aff = aff_storage;
      aff.ensure(n);
      simd::OpTally tally;
      LaneUse lanes;
      std::int64_t local_moves = 0;
      std::int64_t scalar_verts = 0, vector_verts = 0;
      for (std::int64_t vi = first; vi < last; ++vi) {
        const auto u = static_cast<VertexId>(vi);
        const auto deg = g.degree(u);
        if (deg == 0) continue;
        // Hybrid dispatch: a vertex with fewer neighbors than the cutoff
        // runs the scalar loop — gather/scatter latency only loses there
        // (this is also why the paper's gains concentrate on
        // high-average-degree graphs). The default cutoff is one 16-lane
        // vector; the execution planner can move it per graph.
        if (deg < scalar_below) {
          ++scalar_verts;
          accumulate_affinity_scalar(g, *ctx.zeta, u, aff);
          tally.add(0, 0, 0, 2 * static_cast<int>(deg));
          const auto aff_of = [&aff](CommunityId c) {
            return static_cast<double>(aff.get(c));
          };
          if (decide_and_move(ctx, u, aff.touched(), aff_of)) ++local_moves;
          aff.reset();
          continue;
        }
        ++vector_verts;
        if (use_compress) {
          accumulate_compress(ctx, u, aff, tally, lanes);
        } else {
          accumulate_conflict(ctx, u, aff, slow, tally, lanes);
        }
        if (choose_and_move(ctx, u, aff, tally)) ++local_moves;
        aff.reset();
      }
      tally.flush();
      if (telem) {
        reg.add(id_vert_scalar, static_cast<double>(scalar_verts));
        reg.add(id_vert_vector, static_cast<double>(vector_verts));
        reg.add(id_lanes_active, static_cast<double>(lanes.active));
        reg.add(id_lanes_total, static_cast<double>(lanes.total));
      }
      moves.fetch_add(local_moves, std::memory_order_relaxed);
    });

    rs_span.arg("moves", moves.load());

    ++stats.iterations;
    stats.total_moves += moves.load();
    stats.moves_per_iteration.push_back(moves.load());
    if (telem) {
      reg.append(id_moves_iter, static_cast<double>(moves.load()));
      reg.add(use_compress ? id_iter_compress : id_iter_conflict, 1.0);
    }
    last_move_fraction =
        static_cast<double>(moves.load()) / static_cast<double>(n);
    if (moves.load() == 0) break;
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace vgp::community
