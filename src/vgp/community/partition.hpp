// Community partition bookkeeping shared by the Louvain and label
// propagation implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "vgp/graph/csr.hpp"

namespace vgp::community {

/// Community ids live in the same 32-bit space as vertex ids: a partition
/// of an n-vertex graph always uses labels in [0, n), which is what lets
/// the vector kernels gather/scatter affinity with epi32 indices.
using CommunityId = std::int32_t;

/// zeta(u) = u: every vertex in its own community.
std::vector<CommunityId> singleton_partition(std::int64_t n);

/// Renumbers labels to 0..k-1 (order of first appearance); returns k.
std::int64_t compact_labels(std::vector<CommunityId>& zeta);

/// Number of distinct labels (does not modify zeta).
std::int64_t count_communities(const std::vector<CommunityId>& zeta);

/// Size of each community; labels must already be compact (0..k-1).
std::vector<std::int64_t> community_sizes(const std::vector<CommunityId>& zeta,
                                          std::int64_t k);

/// vol(C) = sum of vol(u) over members, as defined in the paper.
std::vector<double> community_volumes(const Graph& g,
                                      const std::vector<CommunityId>& zeta,
                                      std::int64_t k);

/// True when both partitions group the vertices identically (labels may
/// differ; only the equivalence classes are compared).
bool same_partition(const std::vector<CommunityId>& a,
                    const std::vector<CommunityId>& b);

}  // namespace vgp::community
