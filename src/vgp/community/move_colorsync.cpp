// Color-synchronized Louvain move phase — the Grappolo-family baseline
// the paper cites ("GRAPPOLO uses a different and more complex algorithm
// than NetworKit"). A distance-1 coloring partitions the vertices into
// independent sets; processing one color class at a time makes every
// parallel move race-free by construction (no two concurrently moved
// vertices are adjacent), at the cost of more synchronization barriers.
//
// Included as a deterministic, race-free reference against which the
// optimistic PLM/MPLM/ONPL/OVPL variants (benign races, 25-iteration cap)
// can be validated: same objective, different parallelization contract.
#include <atomic>

#include "vgp/coloring/greedy.hpp"
#include "vgp/community/move_ctx.hpp"
#include "vgp/parallel/thread_pool.hpp"
#include "vgp/support/opcount.hpp"
#include "vgp/support/timer.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::community {

MoveStats move_phase_colorsync(const MoveCtx& ctx, simd::Backend backend) {
  const Graph& g = *ctx.g;
  const auto n = g.num_vertices();
  MoveStats stats;
  WallTimer timer;

  auto& reg = telemetry::Registry::global();
  const bool telem = reg.enabled();
  telemetry::MetricId id_moves_iter = 0, id_classes = 0;
  if (telem) {
    id_moves_iter = reg.series("louvain.colorsync.moves_per_iter");
    id_classes = reg.gauge("louvain.colorsync.color_classes");
  }

  // Preprocessing: group vertices by color class.
  WallTimer prep;
  std::vector<std::vector<VertexId>> classes;
  std::int64_t num_colors = 0;
  {
    telemetry::TraceSpan prep_span("colorsync.coloring");
    coloring::Options copts;
    copts.backend = backend;
    const auto coloring = coloring::color_graph(g, copts);
    num_colors = coloring.num_colors;
    classes.resize(static_cast<std::size_t>(coloring.num_colors));
    for (VertexId v = 0; v < n; ++v) {
      classes[static_cast<std::size_t>(
                  coloring.colors[static_cast<std::size_t>(v)] - 1)]
          .push_back(v);
    }
    prep_span.arg("colors", num_colors);
  }
  stats.preprocess_seconds = prep.seconds();
  if (telem) reg.set(id_classes, static_cast<double>(num_colors));

  for (int iter = 0; iter < ctx.max_iterations; ++iter) {
    if (ctx.deadline.expired()) {
      stats.hit_deadline = true;
      break;
    }
    std::atomic<std::int64_t> moves{0};
    telemetry::TraceSpan iter_span("colorsync.iter");
    iter_span.arg("iter", iter);
    iter_span.arg("classes", num_colors);

    for (const auto& cls : classes) {
      // Barrier between classes: all moves inside one class touch
      // pairwise non-adjacent vertices, so affinity reads are stable.
      parallel_for(0, static_cast<std::int64_t>(cls.size()), ctx.grain,
                   [&](std::int64_t first, std::int64_t last) {
                     thread_local DenseAffinity aff_storage;
                     DenseAffinity& aff = aff_storage;
                     aff.ensure(n);
                     auto& oc = opcount::local();
                     std::int64_t local_moves = 0;
                     for (std::int64_t k = first; k < last; ++k) {
                       const VertexId u = cls[static_cast<std::size_t>(k)];
                       if (g.degree(u) == 0) continue;
                       accumulate_affinity_scalar(g, *ctx.zeta, u, aff);
                       oc.scalar_ops += 2 * static_cast<std::uint64_t>(g.degree(u));
                       const auto aff_of = [&aff](CommunityId c) {
                         return static_cast<double>(aff.get(c));
                       };
                       if (decide_and_move(ctx, u, aff.touched(), aff_of)) {
                         ++local_moves;
                       }
                       aff.reset();
                     }
                     moves.fetch_add(local_moves, std::memory_order_relaxed);
                   });
    }

    iter_span.arg("moves", moves.load());
    ++stats.iterations;
    stats.total_moves += moves.load();
    stats.moves_per_iteration.push_back(moves.load());
    if (telem) reg.append(id_moves_iter, static_cast<double>(moves.load()));
    if (moves.load() == 0) break;
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace vgp::community
