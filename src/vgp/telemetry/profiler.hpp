// In-process sampling CPU profiler.
//
// Answers "where are the cycles going *right now*" for a live process —
// the question the post-mortem instruments (metrics snapshots, trace
// files, vgp-report) cannot: spans only cover code someone wrapped, and
// a long-lived vgp-serve cannot be restarted under perf every time p99
// drifts. The profiler samples every running thread at a configurable
// rate and aggregates the stacks into flamegraph-compatible collapsed
// form, exportable live through the serve `Profile` op or vgp-top
// --profile.
//
// Mechanism:
//   * start(hz) arms an ITIMER_PROF interval timer; the kernel delivers
//     SIGPROF to whichever thread is consuming CPU, so samples land on
//     threads in proportion to the CPU they burn (idle threads cost and
//     contribute nothing).
//   * The SIGPROF handler captures the call stack and appends it to a
//     per-thread sample ring claimed from a preallocated pool (same
//     drop-not-wrap discipline as the trace rings: when a ring fills,
//     later samples are counted in dropped_count() rather than
//     overwriting earlier ones).
//   * The handler is async-signal-safe by construction: no malloc, no
//     locks, no formatting. Ring slots are claimed with one CAS on a
//     thread-id field; the stack capture (glibc backtrace(3)) is primed
//     once inside start() so its one-time dynamic loader work happens
//     before the first signal, never inside one.
//   * Symbolization is lazy: pcs stay raw in the rings and are resolved
//     via dladdr(3) only when collapsed()/to_json() renders them (link
//     the binary with -rdynamic / ENABLE_EXPORTS to get names for its
//     own symbols; unresolvable frames render as hex).
//
// Cost contract (the same discipline as telemetry / trace / fault):
//   * Disarmed — the steady state — armed() is one relaxed load; no
//     timer exists, no signal fires, nothing allocates.
//   * Armed: one signal + one ring append per sample per Hz. At the
//     default 99 Hz the overhead is well under 1% of one core.
//
// Telemetry: stop() publishes `profile.samples` / `profile.dropped`
// gauges into the registry. Failpoint `prof.signal` makes start() fail
// as if the timer could not be armed (exercises the serve Profile op's
// error path).
#pragma once

#include <cstdint>
#include <string>

namespace vgp::telemetry {

class Profiler {
 public:
  /// Deepest stack recorded per sample; deeper frames are truncated
  /// (leaf-ward frames win — the caller chain near main collapses).
  static constexpr int kMaxFrames = 48;
  /// Samples per thread ring; at 99 Hz one ring holds ~40 s of a fully
  /// busy thread before dropping.
  static constexpr int kRingCapacity = 4096;
  /// Thread slots in the pool. Threads beyond this many concurrently
  /// sampled ones drop their samples (counted), they do not crash.
  static constexpr int kMaxThreads = 64;
  /// Default sampling rate (prime, so it cannot alias with periodic
  /// work at round frequencies).
  static constexpr int kDefaultHz = 99;

  static Profiler& global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms the timer at `hz` samples per second of process CPU time
  /// (clamped to [1, 1000]; hz <= 0 selects kDefaultHz). Clears the
  /// rings of any previous run. Returns false — without disturbing an
  /// already-armed profile — when a profile is running, and false when
  /// the timer cannot be armed (also injectable via the `prof.signal`
  /// failpoint).
  bool start(int hz = kDefaultHz);

  /// Disarms the timer. Samples already committed stay readable until
  /// the next start(). Publishes profile.samples / profile.dropped
  /// gauges. Idempotent.
  void stop();

  /// One relaxed load: is a profile running right now?
  bool armed() const noexcept;

  /// Rate the current (or last) profile ran at.
  int hz() const noexcept;

  /// Samples committed across all thread rings (live-readable while
  /// armed; exact after stop()).
  std::uint64_t sample_count() const noexcept;
  /// Samples dropped because a ring filled or the thread pool was
  /// exhausted.
  std::uint64_t dropped_count() const noexcept;

  /// Aggregated collapsed-stack ("folded") form, one line per unique
  /// stack: "root;caller;leaf <count>\n" — feed straight into
  /// flamegraph.pl or speedscope. Empty string when no samples.
  std::string collapsed() const;

  /// JSON export: {"schema":"vgp.profile.v1","hz":..,"samples":..,
  /// "dropped":..,"stacks":[{"frames":[...],"count":..},...]}.
  std::string to_json() const;

  struct Impl;

 private:
  Profiler();
  Impl* impl_;  // leaked: the SIGPROF handler may outlive main's exit
};

}  // namespace vgp::telemetry
