#include "vgp/telemetry/sink.hpp"

#include "vgp/fault/failpoint.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace vgp::telemetry {
namespace {

/// Shortest round-trip decimal form; non-finite values (which JSON cannot
/// carry) degrade to 0.
void put_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << '0';
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.write(buf, res.ptr - buf);
}

void put_json_group(std::ostream& out, const char* label, Kind kind,
                    const std::vector<MetricValue>& metrics, bool last) {
  out << "  ";
  write_json_string(out, label);
  out << ": {";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (m.kind != kind) continue;
    if (!first) out << ',';
    first = false;
    out << "\n    ";
    write_json_string(out, m.name);
    out << ": ";
    switch (kind) {
      case Kind::Counter:
      case Kind::Gauge:
        put_number(out, m.value);
        break;
      case Kind::Series: {
        out << '[';
        for (std::size_t i = 0; i < m.samples.size(); ++i) {
          if (i != 0) out << ',';
          put_number(out, m.samples[i]);
        }
        out << ']';
        break;
      }
      case Kind::Histogram: {
        out << "{\"count\": " << m.hist.count << ", \"sum\": ";
        put_number(out, m.hist.sum);
        out << ", \"min\": ";
        put_number(out, m.hist.min);
        out << ", \"max\": ";
        put_number(out, m.hist.max);
        out << ", \"mean\": ";
        put_number(out, m.hist.mean());
        if (!m.hist.buckets.empty()) {
          out << ", \"p50\": ";
          put_number(out, m.hist.percentile(50.0));
          out << ", \"p99\": ";
          put_number(out, m.hist.percentile(99.0));
          // Trailing zero buckets are trimmed; index i covers
          // (2^(i-1-zero), 2^(i-zero)] with zero = Histogram::kZeroBucket.
          std::size_t last = m.hist.buckets.size();
          while (last > 0 && m.hist.buckets[last - 1] == 0) --last;
          out << ", \"zero_bucket\": " << Histogram::kZeroBucket
              << ", \"buckets\": [";
          for (std::size_t i = 0; i < last; ++i) {
            if (i != 0) out << ',';
            out << m.hist.buckets[i];
          }
          out << ']';
        }
        out << '}';
        break;
      }
    }
  }
  out << (first ? "}" : "\n  }") << (last ? "\n" : ",\n");
}

/// CSV fields are metric names (dotted identifiers in practice); quote
/// defensively anyway so arbitrary names cannot break the row structure.
/// The format's contract is "line-oriented, greppable", so embedded
/// newlines and other control characters are escaped (\n, \r, \t, \xNN)
/// rather than carried raw inside the quotes — a hostile name must never
/// fabricate extra rows.
void put_csv_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\"\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json(std::ostream& out, const std::vector<MetricValue>& metrics) {
  out << "{\n  \"schema\": \"vgp.telemetry.v1\",\n";
  put_json_group(out, "counters", Kind::Counter, metrics, false);
  put_json_group(out, "gauges", Kind::Gauge, metrics, false);
  put_json_group(out, "series", Kind::Series, metrics, false);
  put_json_group(out, "histograms", Kind::Histogram, metrics, true);
  out << "}\n";
}

void write_csv(std::ostream& out, const std::vector<MetricValue>& metrics) {
  out << "# vgp.telemetry.v1\n";
  for (const MetricValue& m : metrics) {
    switch (m.kind) {
      case Kind::Counter:
      case Kind::Gauge:
        out << (m.kind == Kind::Counter ? "counter," : "gauge,");
        put_csv_string(out, m.name);
        out << ',';
        put_number(out, m.value);
        out << '\n';
        break;
      case Kind::Series:
        for (std::size_t i = 0; i < m.samples.size(); ++i) {
          out << "series,";
          put_csv_string(out, m.name);
          out << ',' << i << ',';
          put_number(out, m.samples[i]);
          out << '\n';
        }
        break;
      case Kind::Histogram:
        out << "histogram,";
        put_csv_string(out, m.name);
        out << ',' << m.hist.count << ',';
        put_number(out, m.hist.sum);
        out << ',';
        put_number(out, m.hist.min);
        out << ',';
        put_number(out, m.hist.max);
        if (!m.hist.buckets.empty()) {
          out << ',';
          put_number(out, m.hist.percentile(50.0));
          out << ',';
          put_number(out, m.hist.percentile(99.0));
        }
        out << '\n';
        break;
    }
  }
}

bool write_metrics_file(const std::string& path,
                        const std::vector<MetricValue>& metrics) {
  // Telemetry is best-effort: a failed flush reports false, never throws.
  if (VGP_FAILPOINT_SOFT("telemetry.flush.open")) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(out, metrics);
  } else {
    write_json(out, metrics);
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace vgp::telemetry
