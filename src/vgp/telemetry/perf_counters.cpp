#include "vgp/telemetry/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "vgp/telemetry/registry.hpp"

namespace vgp::telemetry {

#if defined(__linux__)

namespace {

/// {cycles, instructions, llc_misses, branch_misses} configs, in the
/// order read_raw() reports them. The leader is index 0.
constexpr std::uint64_t kConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

int open_counter(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

/// One probe per process. Opens and immediately closes a cycles counter;
/// the outcome (and errno on failure) is the availability verdict.
struct Probe {
  bool available = false;
  const char* reason = nullptr;
  int saved_errno = 0;

  Probe() {
    errno = 0;
    const int fd = open_counter(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd >= 0) {
      available = true;
      close(fd);
    } else {
      saved_errno = errno;
      reason = saved_errno == EACCES || saved_errno == EPERM
                   ? "perf-event-open-denied"
               : saved_errno == ENOSYS ? "perf-event-open-unsupported"
               : saved_errno == ENOENT ? "perf-hw-counters-absent"
                                       : "perf-event-open-failed";
    }
    // The verdict is telemetry: a metrics file from a CI container says
    // *why* its spans carry no IPC.
    auto& reg = Registry::global();
    if (reg.enabled()) {
      reg.set(reg.gauge("perf.available"), available ? 1.0 : 0.0);
      if (!available) {
        reg.set(reg.gauge("perf.open_errno"),
                static_cast<double>(saved_errno));
      }
    }
  }
};

const Probe& probe() {
  static const Probe p;
  return p;
}

}  // namespace

PerfGroup::PerfGroup() {
  if (!probe().available) return;
  fd_leader_ = open_counter(kConfigs[0], -1);
  if (fd_leader_ < 0) return;
  slot_of_[0] = 0;
  n_counters_ = 1;
  for (int i = 1; i < 4; ++i) {
    // Sibling failures (LLC misses in VMs, PMU slot pressure) are
    // tolerated: the slot map leaves the counter at -1 and its delta
    // reads as zero.
    const int fd = open_counter(kConfigs[i], fd_leader_);
    if (fd >= 0) {
      fd_sibling_[i - 1] = fd;
      slot_of_[i] = n_counters_++;
    }
  }
  ioctl(fd_leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfGroup::~PerfGroup() {
  for (int i = 0; i < 3; ++i) {
    if (fd_sibling_[i] >= 0) close(fd_sibling_[i]);
  }
  if (fd_leader_ >= 0) close(fd_leader_);
}

void PerfGroup::read_raw(std::uint64_t out[4]) const {
  out[0] = out[1] = out[2] = out[3] = 0;
  if (fd_leader_ < 0) return;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
  std::uint64_t buf[3 + 4];
  const ssize_t want =
      static_cast<ssize_t>((3 + static_cast<std::size_t>(n_counters_)) *
                           sizeof(std::uint64_t));
  if (read(fd_leader_, buf, static_cast<std::size_t>(want)) != want) return;
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  // Multiplexing scale: values are extrapolated to the full enabled
  // window when the PMU time-sliced this group.
  const double scale =
      running > 0 && running < enabled
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  for (int i = 0; i < 4; ++i) {
    if (slot_of_[i] < 0) continue;
    const std::uint64_t raw = buf[3 + slot_of_[i]];
    out[i] = scale == 1.0 ? raw
                          : static_cast<std::uint64_t>(
                                static_cast<double>(raw) * scale);
  }
}

bool PerfGroup::counters_available() { return probe().available; }

const char* PerfGroup::unavailable_reason() { return probe().reason; }

#else  // !__linux__

PerfGroup::PerfGroup() = default;
PerfGroup::~PerfGroup() = default;

void PerfGroup::read_raw(std::uint64_t out[4]) const {
  out[0] = out[1] = out[2] = out[3] = 0;
}

bool PerfGroup::counters_available() { return false; }

const char* PerfGroup::unavailable_reason() { return "perf-not-linux"; }

#endif

PerfGroup& PerfGroup::thread_local_group() {
  // A real object, not a leaked pointer: unlike the trace ring buffers
  // (which the exporter reads after their thread dies) nothing touches
  // a group from outside its thread, and the destructor must run so
  // long-lived apps spawning many threads do not leak perf fds. Spans
  // are stack-scoped, so they unwind before TLS destruction.
  thread_local PerfGroup group;
  return group;
}

}  // namespace vgp::telemetry
