// Report model behind the `vgp-report` CLI: loads the repo's own
// machine-readable outputs and answers two questions —
//
//   * single file:  where did the time go? (per-span count / total /
//     mean breakdown, with IPC when perf counters were attached)
//   * two files:    did anything get slower? (baseline-vs-current diff
//     with a relative threshold, for CI perf gating)
//
// Accepted inputs, sniffed by schema:
//   * vgp.telemetry.v1 metrics JSON (registry snapshot): spans come from
//     the folded `span.<name>.{count,total_ms,mean_ms,ipc}` gauges.
//   * vgp.trace.v1 Chrome-trace JSON (tracer export): spans are
//     aggregated from the raw traceEvents timeline.
//   * vgp.bench.v1 figure summaries (bench binaries' --bench-json=):
//     every (series, label) sample becomes a `bench.<series>/<label>`
//     row whose total and mean both hold the reported value, so the
//     same diff/threshold machinery gates benchmark output (the gated
//     series must be lower-is-better, e.g. time or a cost ratio).
//
// The logic lives in the library (not the tool's main) so the round-trip
// tests exercise exactly what CI runs.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace vgp::telemetry {

/// One span name's aggregate within a loaded report.
struct ReportRow {
  std::string name;
  double count = 0.0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double ipc = 0.0;  // 0 when perf counters were unavailable
};

/// A loaded metrics or trace file, reduced to per-span aggregates.
struct Report {
  std::string path;
  std::string schema;  // "vgp.telemetry.v1", "vgp.trace.v1" or "vgp.bench.v1"
  // Keyed by span name; ordered so printed tables are deterministic.
  std::map<std::string, ReportRow> spans;
  double dropped = 0.0;       // events the tracer had to drop
  double perf_available = -1; // 1/0 from the file; -1 when unrecorded
};

/// Loads `path`, sniffing the schema. Returns false and fills `error`
/// on I/O failure, malformed JSON, or an unrecognised schema.
bool load_report(const std::string& path, Report& out, std::string* error);

/// One span's baseline-vs-current comparison.
struct DiffRow {
  std::string name;
  double base_ms = 0.0;  // mean per call in the baseline
  double cur_ms = 0.0;
  double ratio = 1.0;    // cur / base; 1 when base is zero
  bool regression = false;
  bool only_in_base = false;
  bool only_in_cur = false;
};

struct DiffResult {
  std::vector<DiffRow> rows;  // every span seen in either file
  int regressions = 0;        // rows over threshold
};

/// Knobs for diff_reports. Defaults reproduce the classic
/// lower-is-better time gate.
struct DiffOptions {
  /// Relative change that counts as a regression (0.10 = 10%).
  double threshold = 0.10;
  /// Ignore spans whose baseline mean is at or below this.
  double min_ms = 1e-4;
  /// When true the gated values are speedups/throughputs: a regression
  /// is `cur/base < 1 - threshold` instead of `> 1 + threshold`.
  bool higher_is_better = false;
  /// Substring filters; a span participates when any matches (empty =
  /// all spans participate).
  std::vector<std::string> only;
};

/// Compares per-call mean values span by span under `opts`. Spans
/// present on only one side are reported but never gate (new
/// instrumentation must not fail CI); non-finite means (a NaN that
/// leaked into a report) never gate either.
DiffResult diff_reports(const Report& base, const Report& cur,
                        const DiffOptions& opts);

/// Classic lower-is-better time gate: a span regresses when it exists
/// in both reports with a baseline mean above `min_ms` and
/// `cur/base > 1 + threshold`.
DiffResult diff_reports(const Report& base, const Report& cur,
                        double threshold, double min_ms = 1e-4);

/// Per-span breakdown table for one report, widest total first.
void print_report(std::ostream& out, const Report& rep);

/// Diff table; regressed rows are marked. `threshold` is echoed in the
/// header so CI logs are self-describing.
void print_diff(std::ostream& out, const DiffResult& diff, double threshold);

}  // namespace vgp::telemetry
