#include "vgp/telemetry/json_reader.hpp"

#include "vgp/fault/failpoint.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vgp::telemetry {
namespace {

struct Parser {
  const char* p;
  const char* end;
  const char* begin;
  std::string error;

  bool fail(const std::string& msg) {
    std::ostringstream os;
    os << msg << " at offset " << (p - begin);
    error = os.str();
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (static_cast<std::size_t>(end - p) < len ||
        std::char_traits<char>::compare(p, word, len) != 0) {
      return fail(std::string("expected '") + word + "'");
    }
    p += len;
    return true;
  }

  /// Consumes the four hex digits after "\u" (p points at the 'u').
  bool parse_hex4(long& code) {
    if (end - p < 5) return fail("truncated \\u escape");
    char hex[5] = {p[1], p[2], p[3], p[4], '\0'};
    char* stop = nullptr;
    code = std::strtol(hex, &stop, 16);
    if (stop != hex + 4) return fail("bad \\u escape");
    p += 4;  // leaves p on the last digit; the caller's ++p advances past
    return true;
  }

  /// Appends `code` (any Unicode scalar value) as UTF-8. Graph and
  /// metric names travel through metrics snapshots into the serve
  /// status endpoint, so escapes must round-trip instead of degrading
  /// to '?'.
  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("unterminated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            long code = 0;
            if (!parse_hex4(code)) return false;
            // Surrogate pair: a high surrogate must be followed by a
            // \u-escaped low surrogate; together they name one
            // supplementary-plane code point.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (end - p < 3 || p[1] != '\\' || p[2] != 'u') {
                return fail("high surrogate without low surrogate");
              }
              p += 2;  // consume "\u" of the low half
              long low = 0;
              if (!parse_hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return fail("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return fail("unpaired low surrogate");
            }
            append_utf8(out, static_cast<std::uint32_t>(code));
            break;
          }
          default: return fail("unknown escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': {
        ++p;
        out.type = JsonValue::Type::Object;
        skip_ws();
        if (p < end && *p == '}') { ++p; return true; }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          JsonValue& slot = out.obj[key];
          if (!parse_value(slot, depth + 1)) return false;
          skip_ws();
          if (p < end && *p == ',') { ++p; continue; }
          if (p < end && *p == '}') { ++p; return true; }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p;
        out.type = JsonValue::Type::Array;
        skip_ws();
        if (p < end && *p == ']') { ++p; return true; }
        while (true) {
          out.arr.emplace_back();
          if (!parse_value(out.arr.back(), depth + 1)) return false;
          skip_ws();
          if (p < end && *p == ',') { ++p; continue; }
          if (p < end && *p == ']') { ++p; return true; }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.type = JsonValue::Type::String;
        return parse_string(out.str);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.bval = true;
        return literal("true", 4);
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.bval = false;
        return literal("false", 5);
      case 'n':
        if (end - p >= 2 && p[1] == 'u') {
          out.type = JsonValue::Type::Null;
          return literal("null", 4);
        }
        [[fallthrough]];  // "nan" — handled by from_chars below
      default: {
        const auto res = std::from_chars(p, end, out.num);
        if (res.ec != std::errc{} || res.ptr == p) {
          return fail("expected value");
        }
        out.type = JsonValue::Type::Number;
        p = res.ptr;
        return true;
      }
    }
  }
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), text.data(), {}};
  out = JsonValue{};
  const bool ok = parser.parse_value(out, 0);
  if (ok) {
    parser.skip_ws();
    if (parser.p != parser.end) {
      parser.fail("trailing garbage after value");
      if (error != nullptr) *error = parser.error;
      return false;
    }
    return true;
  }
  if (error != nullptr) *error = parser.error;
  return false;
}

bool parse_json_file(const std::string& path, JsonValue& out,
                     std::string* error) {
  if (VGP_FAILPOINT_SOFT("report.parse")) {
    if (error != nullptr) *error = "fault injection: report.parse";
    return false;
  }
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str(), out, error);
}

}  // namespace vgp::telemetry
