#include "vgp/telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "vgp/telemetry/json_reader.hpp"

namespace vgp::telemetry {
namespace {

/// True when `name` is `span.<stem>.<suffix>`; extracts the stem.
bool split_span_gauge(const std::string& name, const char* suffix,
                      std::string& stem) {
  const std::string prefix = "span.";
  const std::string tail = std::string(".") + suffix;
  if (name.size() <= prefix.size() + tail.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
    return false;
  }
  stem = name.substr(prefix.size(), name.size() - prefix.size() - tail.size());
  return true;
}

void load_from_metrics(const JsonValue& root, Report& out) {
  static const char* kSuffixes[] = {"count", "total_ms", "mean_ms", "ipc"};
  for (const char* group : {"gauges", "counters"}) {
    const JsonValue* vals = root.get(group);
    if (vals == nullptr || !vals->is_object()) continue;
    for (const auto& [name, v] : vals->obj) {
      // A non-finite gauge (NaN from a 0/0 ratio upstream) is treated as
      // missing rather than poisoning every diff it participates in.
      if (!v.is_number() || !std::isfinite(v.num)) continue;
      if (name == "trace.dropped") out.dropped = v.num;
      if (name == "perf.available") out.perf_available = v.num;
      std::string stem;
      for (const char* suffix : kSuffixes) {
        if (!split_span_gauge(name, suffix, stem)) continue;
        ReportRow& row = out.spans[stem];
        row.name = stem;
        if (suffix == kSuffixes[0]) row.count = v.num;
        else if (suffix == kSuffixes[1]) row.total_ms = v.num;
        else if (suffix == kSuffixes[2]) row.mean_ms = v.num;
        else row.ipc = v.num;
        break;
      }
    }
  }
  // Histograms become per-quantile rows (`hist.<name>/p50` etc.), so a
  // --threshold diff flags tail movement, not just mean drift. p50/p99
  // come from the file when present (bucketed sinks emit them); files
  // from the pre-bucket format contribute only the mean row.
  const JsonValue* hists = root.get("histograms");
  if (hists == nullptr || !hists->is_object()) return;
  for (const auto& [name, h] : hists->obj) {
    if (!h.is_object()) continue;
    const JsonValue* count = h.get("count");
    const double n = count != nullptr ? count->number_or(0.0) : 0.0;
    const auto quantile_row = [&](const char* label, const JsonValue* v) {
      if (v == nullptr || !v->is_number() || !std::isfinite(v->num)) return;
      const std::string key = "hist." + name + "/" + label;
      ReportRow& row = out.spans[key];
      row.name = key;
      row.count = n;
      row.total_ms = v->num;
      row.mean_ms = v->num;
    };
    quantile_row("p50", h.get("p50"));
    quantile_row("p99", h.get("p99"));
    quantile_row("mean", h.get("mean"));
  }
}

void load_from_trace(const JsonValue& root, Report& out) {
  if (const JsonValue* other = root.get("otherData")) {
    if (const JsonValue* dropped = other->get("dropped")) {
      out.dropped = dropped->number_or(0.0);
    }
    if (const JsonValue* perf = other->get("perf")) {
      out.perf_available = perf->type == JsonValue::Type::Bool
                               ? (perf->bval ? 1.0 : 0.0)
                               : perf->number_or(-1.0);
    }
  }
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || !events->is_array()) return;
  // Per-span cycle/instruction sums for aggregate IPC.
  std::map<std::string, std::pair<double, double>> perf_sums;
  for (const JsonValue& ev : events->arr) {
    const JsonValue* name = ev.get("name");
    const JsonValue* dur = ev.get("dur");
    if (name == nullptr || !name->is_string()) continue;
    ReportRow& row = out.spans[name->str];
    row.name = name->str;
    row.count += 1.0;
    if (dur != nullptr) {
      const double d = dur->number_or(0.0);
      if (std::isfinite(d)) row.total_ms += d * 1e-3;
    }
    if (const JsonValue* args = ev.get("args")) {
      const JsonValue* cycles = args->get("cycles");
      const JsonValue* instr = args->get("instructions");
      if (cycles != nullptr && instr != nullptr) {
        const double c = cycles->number_or(0.0);
        const double in = instr->number_or(0.0);
        if (std::isfinite(c) && std::isfinite(in)) {
          auto& sums = perf_sums[name->str];
          sums.first += c;
          sums.second += in;
        }
      }
    }
  }
  for (auto& [name, row] : out.spans) {
    if (row.count > 0.0) row.mean_ms = row.total_ms / row.count;
    const auto it = perf_sums.find(name);
    if (it != perf_sums.end() && it->second.first > 0.0) {
      row.ipc = it->second.second / it->second.first;
    }
  }
}

void load_from_bench(const JsonValue& root, Report& out) {
  // Each (series, label) sample becomes one row named
  // `bench.<series>/<label>` with total == mean == the reported value.
  // Bench values are whatever unit the figure reports (ms, speedup,
  // ratio); the diff machinery only needs lower-is-better, which the
  // CI-gated series are built to satisfy.
  const JsonValue* figures = root.get("figures");
  if (figures == nullptr || !figures->is_array()) return;
  for (const JsonValue& fig : figures->arr) {
    const JsonValue* series = fig.get("series");
    if (series == nullptr || !series->is_array()) continue;
    for (const JsonValue& s : series->arr) {
      const JsonValue* name = s.get("name");
      const JsonValue* labels = s.get("labels");
      const JsonValue* values = s.get("values");
      if (name == nullptr || !name->is_string() || labels == nullptr ||
          !labels->is_array() || values == nullptr || !values->is_array()) {
        continue;
      }
      const std::size_t count = std::min(labels->arr.size(), values->arr.size());
      for (std::size_t i = 0; i < count; ++i) {
        if (!labels->arr[i].is_string() || !values->arr[i].is_number() ||
            !std::isfinite(values->arr[i].num)) {
          continue;
        }
        const std::string key =
            "bench." + name->str + "/" + labels->arr[i].str;
        ReportRow& row = out.spans[key];
        row.name = key;
        row.count = 1.0;
        row.total_ms = values->arr[i].num;
        row.mean_ms = values->arr[i].num;
      }
    }
  }
}

}  // namespace

bool load_report(const std::string& path, Report& out, std::string* error) {
  out = Report{};
  out.path = path;
  JsonValue root;
  if (!parse_json_file(path, root, error)) return false;
  // Sniff the schema: metrics files carry it at the top level, trace
  // files inside otherData.
  if (const JsonValue* schema = root.get("schema")) {
    out.schema = schema->str;
  } else if (const JsonValue* other = root.get("otherData")) {
    if (const JsonValue* schema2 = other->get("schema")) {
      out.schema = schema2->str;
    }
  }
  if (out.schema == "vgp.telemetry.v1") {
    load_from_metrics(root, out);
    return true;
  }
  if (out.schema == "vgp.trace.v1") {
    load_from_trace(root, out);
    return true;
  }
  if (out.schema == "vgp.bench.v1") {
    load_from_bench(root, out);
    return true;
  }
  if (error != nullptr) {
    *error = path + ": unrecognised schema '" + out.schema +
             "' (expected vgp.telemetry.v1, vgp.trace.v1 or vgp.bench.v1)";
  }
  return false;
}

DiffResult diff_reports(const Report& base, const Report& cur,
                        const DiffOptions& opts) {
  const auto selected = [&](const std::string& name) {
    if (opts.only.empty()) return true;
    for (const std::string& pat : opts.only) {
      if (name.find(pat) != std::string::npos) return true;
    }
    return false;
  };
  DiffResult out;
  for (const auto& [name, brow] : base.spans) {
    if (!selected(name)) continue;
    DiffRow row;
    row.name = name;
    row.base_ms = brow.mean_ms;
    const auto it = cur.spans.find(name);
    if (it == cur.spans.end()) {
      row.only_in_base = true;
    } else {
      row.cur_ms = it->second.mean_ms;
      if (row.base_ms > opts.min_ms && std::isfinite(row.base_ms) &&
          std::isfinite(row.cur_ms)) {
        row.ratio = row.cur_ms / row.base_ms;
        row.regression = opts.higher_is_better
                             ? row.ratio < 1.0 - opts.threshold
                             : row.ratio > 1.0 + opts.threshold;
        if (row.regression) ++out.regressions;
      }
    }
    out.rows.push_back(std::move(row));
  }
  for (const auto& [name, crow] : cur.spans) {
    if (base.spans.count(name) != 0 || !selected(name)) continue;
    DiffRow row;
    row.name = name;
    row.cur_ms = crow.mean_ms;
    row.only_in_cur = true;
    out.rows.push_back(std::move(row));
  }
  return out;
}

DiffResult diff_reports(const Report& base, const Report& cur,
                        double threshold, double min_ms) {
  DiffOptions opts;
  opts.threshold = threshold;
  opts.min_ms = min_ms;
  return diff_reports(base, cur, opts);
}

void print_report(std::ostream& out, const Report& rep) {
  out << "# " << rep.path << " (" << rep.schema << ")\n";
  if (rep.dropped > 0.0) {
    out << "# warning: " << rep.dropped << " events dropped (buffer full)\n";
  }
  if (rep.perf_available == 0.0) {
    out << "# perf counters unavailable in this run; IPC column is 0\n";
  }
  out << std::left << std::setw(36) << "span" << std::right << std::setw(10)
      << "count" << std::setw(12) << "total_ms" << std::setw(12) << "mean_ms"
      << std::setw(8) << "ipc" << "\n";
  // Heaviest spans first: the table answers "where did the time go".
  std::vector<const ReportRow*> rows;
  rows.reserve(rep.spans.size());
  for (const auto& [name, row] : rep.spans) rows.push_back(&row);
  std::sort(rows.begin(), rows.end(), [](const ReportRow* a,
                                         const ReportRow* b) {
    if (a->total_ms != b->total_ms) return a->total_ms > b->total_ms;
    return a->name < b->name;
  });
  out << std::fixed;
  for (const ReportRow* row : rows) {
    out << std::left << std::setw(36) << row->name << std::right
        << std::setprecision(0) << std::setw(10) << row->count
        << std::setprecision(3) << std::setw(12) << row->total_ms
        << std::setw(12) << row->mean_ms << std::setw(8)
        << std::setprecision(2) << row->ipc << "\n";
  }
  out.unsetf(std::ios::fixed);
}

void print_diff(std::ostream& out, const DiffResult& diff, double threshold) {
  out << "# perf diff (mean ms per call, threshold +"
      << static_cast<int>(threshold * 100.0 + 0.5) << "%)\n";
  out << std::left << std::setw(36) << "span" << std::right << std::setw(12)
      << "base_ms" << std::setw(12) << "cur_ms" << std::setw(10) << "ratio"
      << "\n";
  out << std::fixed;
  for (const DiffRow& row : diff.rows) {
    out << std::left << std::setw(36) << row.name << std::right
        << std::setprecision(3) << std::setw(12) << row.base_ms
        << std::setw(12) << row.cur_ms;
    if (row.only_in_base) {
      out << std::setw(10) << "-" << "  only-in-baseline";
    } else if (row.only_in_cur) {
      out << std::setw(10) << "-" << "  only-in-current";
    } else {
      out << std::setprecision(2) << std::setw(9) << row.ratio << "x";
      if (row.regression) out << "  REGRESSION";
    }
    out << "\n";
  }
  out.unsetf(std::ios::fixed);
  if (diff.regressions > 0) {
    out << "# " << diff.regressions << " regression(s) over threshold\n";
  } else {
    out << "# no regressions over threshold\n";
  }
}

}  // namespace vgp::telemetry
