#include "vgp/telemetry/histogram.hpp"

#include <cmath>

namespace vgp::telemetry {

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN both collapse to 0
  const int b = static_cast<int>(std::floor(std::log2(v))) + kZeroBucket + 1;
  if (b < 0) return 0;
  if (b >= kBuckets) return kBuckets - 1;
  return b;
}

double Histogram::bucket_upper(int i) noexcept {
  return std::pow(2.0, i - kZeroBucket);
}

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double> fetch_add is a CAS loop on x86-64; fine off the
  // signal path (the profiler never calls this from its handler).
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double p) const noexcept {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double add = other.sum();
  while (!sum_.compare_exchange_weak(cur, cur + add, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

}  // namespace vgp::telemetry
