// Continuous metrics exposition in Prometheus text format.
//
// The JSON/CSV sinks (sink.hpp) are post-mortem: one snapshot at
// process exit. This exporter is the live complement — it renders the
// same MetricValue snapshot in Prometheus text exposition format 0.0.4
// so a scraper (or `curl`, or the serve `Metrics` op, or vgp-top) can
// watch the counters move while the process works:
//
//   # TYPE vgp_serve_requests counter
//   vgp_serve_requests 183220
//   # TYPE vgp_serve_latency_us histogram
//   vgp_serve_latency_us_bucket{le="64"} 171034
//   vgp_serve_latency_us_bucket{le="+Inf"} 183220
//   vgp_serve_latency_us_sum 9.73221e+06
//   vgp_serve_latency_us_count 183220
//
// Mapping rules:
//   * metric names are prefixed `vgp_` and every character outside
//     [a-zA-Z0-9_] becomes '_' ("serve.latency.us" -> vgp_serve_latency_us)
//   * counters are published as monotonic totals. The renderer is
//     delta-aware across registry resets: if a raw counter ever moves
//     backwards (reset() between scrapes), the lost total is folded
//     into a per-name offset so the exposed value never decreases —
//     rate() over a scrape series stays correct.
//   * histograms publish cumulative `_bucket{le="..."}` counts on the
//     log2 bucket upper bounds (empty buckets elided; `+Inf` always
//     present), plus `_sum` and `_count`.
//   * gauges publish as-is; series publish their last value as a gauge
//     (`vgp_<name>_last`) plus a `vgp_<name>_count` sample count.
//
// The Exporter thread periodically renders a producer callback into a
// file (write-temp + rename, so a scraper never reads a torn file) —
// the "textfile collector" pattern. vgp-serve points it at
// Server::metrics_text so the file carries the serve-layer stats even
// when registry telemetry is disabled; library users get the plain
// registry snapshot by default.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vgp/telemetry/registry.hpp"

namespace vgp::telemetry {

/// Prometheus-legal metric name: `vgp_` + name with every character
/// outside [a-zA-Z0-9_] replaced by '_'.
std::string prometheus_name(const std::string& name);

/// Renders one snapshot in Prometheus text exposition format 0.0.4.
/// Stateless and deterministic — same metrics, same text.
std::string render_prometheus(const std::vector<MetricValue>& metrics);

/// Registry::global().collect() + render, with the monotonic-counter
/// guard (see file comment) applied across calls.
std::string render_prometheus();

/// Periodic exposition-file writer. One global instance; start() spawns
/// the thread, stop() joins it. The producer runs on the exporter
/// thread, so it must be safe to call concurrently with the workload
/// (Registry::collect() and Server::metrics_text are).
class Exporter {
 public:
  static Exporter& global();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Starts exporting `producer()` to `path` every `interval_s` seconds
  /// (clamped to >= 0.05). A null producer means render_prometheus().
  /// Returns false when already running or the path's directory is not
  /// writable (probed immediately so misconfiguration fails loudly, not
  /// silently on a detached thread).
  bool start(const std::string& path, double interval_s,
             std::function<std::string()> producer = nullptr);

  /// Writes one final export, stops the thread, joins. Idempotent.
  void stop();

  bool running() const noexcept;
  /// Completed file writes (tests wait on this to see a tick happen).
  std::uint64_t exports() const noexcept;

  struct Impl;

 private:
  Exporter();
  Impl* impl_;
};

}  // namespace vgp::telemetry
