// Hardware performance counters via perf_event_open, attachable to trace
// spans (trace.hpp).
//
// One PerfGroup owns a counter group on the calling thread: cycles (the
// group leader), instructions, LLC misses, and branch misses, all
// userspace-only. A group read is one read(2) returning every counter
// atomically, so a span's deltas are mutually consistent; with
// PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING the values are scaled for
// multiplexing when the PMU is oversubscribed.
//
// Containers and CI runners routinely deny the syscall
// (perf_event_paranoid, seccomp, missing PMU). The first open attempt
// decides a process-wide verdict: available, or degraded-to-disabled
// with a static reason string. The verdict is recorded in telemetry as
// the `perf.available` gauge (and `perf.open_errno` when it failed) —
// degradation is data, never a failure. Sibling counters that cannot be
// opened (e.g. LLC misses inside a VM) are tolerated individually: their
// deltas read as zero.
#pragma once

#include <cstdint>

namespace vgp::telemetry {

/// One perf_event counter group bound to the thread that constructed it.
/// Construction is cheap when the process-wide probe already failed.
class PerfGroup {
 public:
  PerfGroup();
  ~PerfGroup();
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  /// True when the group leader opened and reads will return data.
  bool ok() const noexcept { return fd_leader_ >= 0; }

  /// Reads all four counters into out[4] as {cycles, instructions,
  /// llc_misses, branch_misses}, scaled for multiplexing. Zeroes `out`
  /// when the group is not ok().
  void read_raw(std::uint64_t out[4]) const;

  /// The calling thread's lazily-constructed group (the tracer's hook).
  static PerfGroup& thread_local_group();

  /// Process-wide probe verdict: true when perf_event_open works here.
  /// First call performs the probe and records the verdict in telemetry.
  static bool counters_available();

  /// Static string naming why the probe failed ("perf-event-open-denied",
  /// ...), or nullptr when counters are available.
  static const char* unavailable_reason();

 private:
  int fd_leader_ = -1;
  int fd_sibling_[3] = {-1, -1, -1};
  int n_counters_ = 0;  // leader + opened siblings
  // Maps read-buffer slots back to {cycles, instr, llc, branch} order
  // when some siblings failed to open.
  int slot_of_[4] = {-1, -1, -1, -1};
};

}  // namespace vgp::telemetry
