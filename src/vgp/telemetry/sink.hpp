// JSON / CSV sinks for telemetry snapshots.
//
// JSON shape (one object per run; see docs/architecture.md for the
// metric-name contract):
//
//   {
//     "schema": "vgp.telemetry.v1",
//     "counters":   { "<name>": <number>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "series":     { "<name>": [<number>, ...], ... },
//     "histograms": { "<name>": {"count":n,"sum":s,"min":a,"max":b,
//                                "mean":m,"p50":q,"p99":q,
//                                "zero_bucket":z,"buckets":[...]}, ... }
//   }
//
// p50/p99/buckets appear whenever the histogram carried log2 buckets
// (every live observation does; only files written before the bucketed
// format lack them). `buckets[i]` counts observations in
// (2^(i-1-z), 2^(i-z)] with z = zero_bucket; trailing zeroes trimmed.
//
// CSV shape (line-oriented, greppable):
//   counter,<name>,<value>
//   gauge,<name>,<value>
//   series,<name>,<index>,<value>
//   histogram,<name>,<count>,<sum>,<min>,<max>[,<p50>,<p99>]
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "vgp/telemetry/registry.hpp"

namespace vgp::telemetry {

void write_json(std::ostream& out, const std::vector<MetricValue>& metrics);
void write_csv(std::ostream& out, const std::vector<MetricValue>& metrics);

/// Writes `s` as a JSON string literal with full escaping (quotes,
/// backslashes, control characters). Shared with the trace exporter so
/// span names and args get the same treatment as metric names.
void write_json_string(std::ostream& out, const std::string& s);

/// Writes to `path`, choosing CSV when the path ends in ".csv" and JSON
/// otherwise. Returns false when the file cannot be opened or written.
bool write_metrics_file(const std::string& path,
                        const std::vector<MetricValue>& metrics);

}  // namespace vgp::telemetry
