#include "vgp/telemetry/registry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "vgp/support/buffer.hpp"
#include "vgp/support/opcount.hpp"
#include "vgp/support/timer.hpp"
#include "vgp/telemetry/sink.hpp"

namespace vgp::telemetry {
namespace {

struct Metric {
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;          // merged counters, gauges
  std::vector<double> samples; // series
  HistogramData hist;
  /// Non-null for attach_histogram() metrics: snapshots read the live
  /// wait-free histogram instead of `hist`.
  const Histogram* attached = nullptr;
};

/// Copies a live Histogram into the snapshot representation. min/max
/// degrade to bucket bounds (the wait-free path tracks neither).
HistogramData snapshot_histogram(const Histogram& h) {
  HistogramData out;
  out.count = h.count();
  out.sum = h.sum();
  out.buckets.resize(Histogram::kBuckets);
  int lo = -1, hi = -1;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    out.buckets[static_cast<std::size_t>(i)] = h.bucket(i);
    if (h.bucket(i) != 0) {
      if (lo < 0) lo = i;
      hi = i;
    }
  }
  if (lo >= 0) {
    out.min = lo == 0 ? 0.0 : Histogram::bucket_upper(lo - 1);
    out.max = Histogram::bucket_upper(hi);
  }
  return out;
}

const char* kind_word(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Series: return "series";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

double HistogramData::percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      return Histogram::bucket_upper(static_cast<int>(i));
    }
  }
  return Histogram::bucket_upper(static_cast<int>(buckets.size()) - 1);
}

struct Registry::Impl {
  mutable std::mutex mu;
  std::vector<Metric> metrics;
  std::map<std::string, MetricId, std::less<>> index;
  /// Per-thread counter shards; entries are removed (after a final merge)
  /// by each shard's thread-exit destructor, so no dangling pointers
  /// survive a pool teardown.
  std::vector<std::vector<double>*> shards;
  std::atomic<bool> enabled{false};
  std::string path;

  MetricId register_metric(std::string_view name, Kind kind) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = index.find(name);
    if (it != index.end()) {
      const Metric& m = metrics[static_cast<std::size_t>(it->second)];
      if (m.kind != kind) {
        throw std::invalid_argument("telemetry: metric '" + m.name +
                                    "' already registered as " +
                                    kind_word(m.kind));
      }
      return it->second;
    }
    const auto id = static_cast<MetricId>(metrics.size());
    metrics.push_back(Metric{std::string(name), kind, 0.0, {}, {}});
    index.emplace(std::string(name), id);
    return id;
  }

  void merge_locked() {
    for (std::vector<double>* shard : shards) {
      const std::size_t limit = std::min(shard->size(), metrics.size());
      for (std::size_t id = 0; id < limit; ++id) {
        metrics[id].value += (*shard)[id];
        (*shard)[id] = 0.0;
      }
    }
  }
};

namespace {

Registry::Impl* g_impl = nullptr;

/// Thread-local counter shard. Construction registers with the global
/// impl; destruction merges any residue and deregisters, so short-lived
/// pool threads neither lose counts nor leave dangling pointers.
struct ThreadShard {
  std::vector<double> counts;

  ThreadShard() {
    std::lock_guard<std::mutex> lock(g_impl->mu);
    g_impl->shards.push_back(&counts);
  }

  ~ThreadShard() {
    std::lock_guard<std::mutex> lock(g_impl->mu);
    const std::size_t limit =
        std::min(counts.size(), g_impl->metrics.size());
    for (std::size_t id = 0; id < limit; ++id) {
      g_impl->metrics[id].value += counts[id];
    }
    std::erase(g_impl->shards, &counts);
  }
};

}  // namespace

Registry::Registry() : impl_(new Impl) {
  g_impl = impl_;
  if (const char* env = std::getenv("VGP_METRICS")) {
    if (env[0] != '\0') {
      impl_->path = env;
      impl_->enabled.store(true, std::memory_order_relaxed);
      std::atexit([] { (void)telemetry::flush(); });
    }
  }
}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: outlives pool threads
  return *r;
}

MetricId Registry::counter(std::string_view name) {
  return impl_->register_metric(name, Kind::Counter);
}

MetricId Registry::gauge(std::string_view name) {
  return impl_->register_metric(name, Kind::Gauge);
}

MetricId Registry::series(std::string_view name) {
  return impl_->register_metric(name, Kind::Series);
}

MetricId Registry::histogram(std::string_view name) {
  return impl_->register_metric(name, Kind::Histogram);
}

bool Registry::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Registry::set_enabled(bool on) noexcept {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

void Registry::add(MetricId id, double v) {
  if (!enabled()) return;
  thread_local ThreadShard shard;
  auto& c = shard.counts;
  if (c.size() <= static_cast<std::size_t>(id)) {
    c.resize(static_cast<std::size_t>(id) + 1, 0.0);
  }
  c[static_cast<std::size_t>(id)] += v;
}

void Registry::set(MetricId id, double v) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->metrics[static_cast<std::size_t>(id)].value = v;
}

void Registry::append(MetricId id, double v) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->metrics[static_cast<std::size_t>(id)].samples.push_back(v);
}

void Registry::observe(MetricId id, double v) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& h = impl_->metrics[static_cast<std::size_t>(id)].hist;
  if (h.count == 0 || v < h.min) h.min = v;
  if (h.count == 0 || v > h.max) h.max = v;
  h.sum += v;
  ++h.count;
  if (h.buckets.empty()) h.buckets.resize(Histogram::kBuckets, 0);
  ++h.buckets[static_cast<std::size_t>(Histogram::bucket_index(v))];
}

MetricId Registry::attach_histogram(std::string_view name,
                                    const Histogram* h) {
  const MetricId id = impl_->register_metric(name, Kind::Histogram);
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->metrics[static_cast<std::size_t>(id)].attached = h;
  return id;
}

void Registry::detach_histogram(std::string_view name, const Histogram* h) {
  const MetricId id = impl_->register_metric(name, Kind::Histogram);
  std::lock_guard<std::mutex> lock(impl_->mu);
  Metric& m = impl_->metrics[static_cast<std::size_t>(id)];
  if (m.attached != h) return;  // a newer owner took the name
  m.hist = snapshot_histogram(*h);  // keep the data for the final flush
  m.attached = nullptr;
}

void Registry::merge() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->merge_locked();
}

std::vector<MetricValue> Registry::collect() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->merge_locked();
  std::vector<MetricValue> out;
  out.reserve(impl_->metrics.size() + 5);
  for (const Metric& m : impl_->metrics) {
    out.push_back(MetricValue{m.name, m.kind, m.value, m.samples,
                              m.attached != nullptr
                                  ? snapshot_histogram(*m.attached)
                                  : m.hist});
  }
  // Fold the legacy operation-class counters into the snapshot so one
  // metrics file carries both views.
  const OpCounts ops = opcount::total();
  const auto fold = [&out](const char* name, std::uint64_t v) {
    out.push_back(MetricValue{name, Kind::Counter,
                              static_cast<double>(v), {}, {}});
  };
  fold("ops.scalar_ops", ops.scalar_ops);
  fold("ops.vector_ops", ops.vector_ops);
  fold("ops.gather_lanes", ops.gather_lanes);
  fold("ops.scatter_lanes", ops.scatter_lanes);
  fold("ops.mem_lines", ops.mem_lines);
  // Fold the tracer's per-span aggregates in as `span.*` gauges so a
  // metrics file alone (no timeline) is enough for vgp-report to diff.
  const auto& tracer = Tracer::global();
  const std::vector<SpanSummary> spans = tracer.summaries();
  const auto gauge_out = [&out](std::string name, double v) {
    out.push_back(MetricValue{std::move(name), Kind::Gauge, v, {}, {}});
  };
  for (const SpanSummary& s : spans) {
    gauge_out("span." + s.name + ".count", static_cast<double>(s.count));
    gauge_out("span." + s.name + ".total_ms", s.total_ms);
    gauge_out("span." + s.name + ".mean_ms",
              s.count == 0 ? 0.0 : s.total_ms / static_cast<double>(s.count));
    if (s.cycles > 0) {
      gauge_out("span." + s.name + ".ipc",
                static_cast<double>(s.instructions) /
                    static_cast<double>(s.cycles));
    }
  }
  if (!spans.empty() || tracer.enabled()) {
    out.push_back(MetricValue{"trace.dropped", Kind::Counter,
                              static_cast<double>(tracer.dropped_count()),
                              {},
                              {}});
  }
  // Process memory view, sampled at snapshot time. mem.mapped_bytes is
  // the live Mapping total: a mapped graph shows up here immediately but
  // reaches RSS only as its pages fault in.
  gauge_out("mem.rss_bytes",
            static_cast<double>(support::current_rss_bytes()));
  gauge_out("mem.peak_rss_bytes",
            static_cast<double>(support::peak_rss_bytes()));
  gauge_out("mem.mapped_bytes", static_cast<double>(support::mapped_bytes()));
  return out;
}

void Registry::reset() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (Metric& m : impl_->metrics) {
      m.value = 0.0;
      m.samples.clear();
      m.hist = HistogramData{};
    }
    for (std::vector<double>* shard : impl_->shards) {
      std::fill(shard->begin(), shard->end(), 0.0);
    }
  }
  opcount::reset_all();
}

void Registry::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->path = std::move(path);
}

std::string Registry::output_path() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->path;
}

void enable_file_output(const std::string& path) {
  auto& reg = Registry::global();
  reg.set_output_path(path);
  reg.set_enabled(true);
  static std::once_flag once;
  std::call_once(once, [] { std::atexit([] { (void)telemetry::flush(); }); });
}

bool flush() {
  auto& reg = Registry::global();
  const std::string path = reg.output_path();
  if (path.empty()) return false;
  return write_metrics_file(path, reg.collect());
}

ScopedPhase::ScopedPhase(const char* name) : name_(name), span_(name) {}

ScopedPhase::~ScopedPhase() {
  auto& reg = Registry::global();
  if (!reg.enabled()) return;
  const double elapsed = timer_.seconds();
  const MetricId id =
      reg.histogram(std::string("phase.") + name_ + ".seconds");
  reg.observe(id, elapsed);
}

}  // namespace vgp::telemetry
