// Shared log2-bucketed latency/duration histogram.
//
// Before this class existed the repo carried three private copies of
// the same idea: serve::LatencyHistogram (atomic buckets for p50/p99 in
// Status), loadgen's PerThread::latency_buckets, and the registry's
// HistogramData (count/sum/min/max only — no quantiles at all). This is
// the one implementation all three now share, and the registry can
// expose any instance's buckets so vgp-report diffs p50/p99 — not just
// means — between runs.
//
// Bucketing: value v (in whatever unit the caller observes — the serve
// path observes microseconds, ScopedPhase observes seconds) lands in
// bucket floor(log2(v)) + kZeroBucket + 1, clamped to [0, kBuckets).
// Bucket i therefore covers [2^(i-1-kZeroBucket), 2^(i-kZeroBucket))
// and everything at or below 2^-kZeroBucket collapses into bucket 0, so
// sub-unit values (fractional seconds) keep ~2x quantile resolution
// down to one millionth of the unit. percentile() returns the upper
// bound of the bucket holding the requested rank — the same upper-bound
// convention the old serve histogram used, so for microsecond
// observations >= 1 the reported quantiles are bit-identical to before.
//
// Concurrency: observe() is wait-free (one relaxed fetch_add per bucket
// plus count/sum) and safe from any thread; readers see a consistent-
// enough snapshot for monitoring (the count/sum/bucket reads are not
// mutually atomic, which a live scrape tolerates by design). Not
// async-signal-safe only because of the atomic<double> sum CAS loop —
// the profiler keeps its own fixed ring instead.
#pragma once

#include <atomic>
#include <cstdint>

namespace vgp::telemetry {

class Histogram {
 public:
  static constexpr int kBuckets = 64;
  /// Values at or below 2^-kZeroBucket land in bucket 0.
  static constexpr int kZeroBucket = 20;

  /// Bucket index for `v` (non-positive values count into bucket 0).
  static int bucket_index(double v) noexcept;
  /// Upper bound of bucket `i` in the observed unit: 2^(i - kZeroBucket).
  static double bucket_upper(int i) noexcept;

  void observe(double v) noexcept;

  /// Quantile from the bucket upper bounds; `p` in [0, 100]. Returns 0
  /// when the histogram is empty.
  double percentile(double p) const noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Folds `other` into this histogram (loadgen merges per-connection
  /// histograms this way). Not atomic with concurrent observers of
  /// `other`; call when the producer is done.
  void merge(const Histogram& other) noexcept;

  /// Zeroes every bucket and the count/sum.
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace vgp::telemetry
