#include "vgp/telemetry/profiler.hpp"

#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "vgp/fault/failpoint.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::telemetry {
namespace {

/// One captured stack. `depth` is committed last (release) so a reader
/// scanning a live ring never sees a half-written frame array.
struct Sample {
  std::atomic<std::int32_t> depth{0};
  void* pc[Profiler::kMaxFrames];
};

/// One thread's sample ring, claimed from the pool by the first SIGPROF
/// that lands on the thread. Single writer (the owning thread's signal
/// handler); concurrent readers tolerate a racing tail by honoring the
/// release-published head.
struct ThreadRing {
  std::atomic<bool> claimed{false};
  std::atomic<std::uint32_t> head{0};  ///< committed samples, never wraps
  Sample samples[Profiler::kRingCapacity];
};

/// Thread-local ring pointer. Trivially initialized on purpose: a
/// thread_local with a dynamic initializer would run a guard (and
/// potentially allocate) on first access — which here happens inside
/// the signal handler.
thread_local ThreadRing* t_ring = nullptr;

}  // namespace

struct Profiler::Impl {
  std::mutex mu;                ///< serializes start()/stop()
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> dropped{0};
  int hz = Profiler::kDefaultHz;
  /// Pool of per-thread rings, allocated on the first start() (never in
  /// the handler) and reused across profiles.
  ThreadRing* pool = nullptr;
  bool handler_installed = false;
  struct sigaction prev_action {};

  MetricId samples_gauge = -1;
  MetricId dropped_gauge = -1;

  static Impl* instance;  ///< for the signal handler
};

Profiler::Impl* Profiler::Impl::instance = nullptr;

namespace {

/// The SIGPROF handler: claim a ring (CAS, no allocation), capture the
/// stack, commit. Everything here is async-signal-safe; errno is
/// preserved because backtrace() may clobber it under the interrupted
/// code's feet.
void on_sigprof(int /*sig*/) {
  const int saved_errno = errno;
  Profiler::Impl* impl = Profiler::Impl::instance;
  if (impl == nullptr || !impl->armed.load(std::memory_order_relaxed)) {
    errno = saved_errno;
    return;
  }
  ThreadRing* ring = t_ring;
  if (ring == nullptr) {
    for (int i = 0; i < Profiler::kMaxThreads; ++i) {
      bool expected = false;
      if (impl->pool[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        ring = t_ring = &impl->pool[i];
        break;
      }
    }
    if (ring == nullptr) {  // pool exhausted: count, don't crash
      impl->dropped.fetch_add(1, std::memory_order_relaxed);
      errno = saved_errno;
      return;
    }
  }
  const std::uint32_t h = ring->head.load(std::memory_order_relaxed);
  if (h >= Profiler::kRingCapacity) {  // full: drop-not-wrap
    impl->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  Sample& s = ring->samples[h];
  // backtrace(3) walks the unwind tables; its one-time loader work was
  // primed in start(), so from here it neither allocates nor locks.
  const int depth = ::backtrace(s.pc, Profiler::kMaxFrames);
  s.depth.store(depth, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
  errno = saved_errno;
}

/// Frames at the top of every capture that belong to the profiler
/// itself, skipped at render time so flamegraphs start at the
/// interrupted frame. On x86-64 glibc a backtrace taken inside a
/// handler reads: [0] the handler, [1] __restore_rt (the signal
/// trampoline), [2] the interrupted pc — so exactly two frames are
/// ours. Skipping a third would eat the interrupted frame itself and
/// every flamegraph leaf would be the victim's *caller*.
constexpr int kSkipFrames = 2;

/// Best-effort symbol name for a pc; hex when dladdr has nothing.
std::string symbolize(void* pc) {
  Dl_info info;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr &&
      info.dli_sname[0] != '\0') {
    return info.dli_sname;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR,
                reinterpret_cast<std::uintptr_t>(pc));
  return buf;
}

/// Folds every committed sample into stack -> count, rendering each
/// frame once (symbolization is the expensive part; cache per pc).
std::map<std::string, std::uint64_t> fold_stacks(ThreadRing* pool) {
  std::map<void*, std::string> names;
  std::map<std::string, std::uint64_t> folded;
  if (pool == nullptr) return folded;
  for (int t = 0; t < Profiler::kMaxThreads; ++t) {
    const ThreadRing& ring = pool[t];
    const std::uint32_t head = ring.head.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < head; ++i) {
      const Sample& s = ring.samples[i];
      const std::int32_t depth = s.depth.load(std::memory_order_acquire);
      if (depth <= kSkipFrames) continue;
      // backtrace() stores leaf-first; collapsed format wants
      // root-first, semicolon-joined.
      std::string key;
      for (std::int32_t f = depth - 1; f >= kSkipFrames; --f) {
        auto [it, inserted] = names.try_emplace(s.pc[f]);
        if (inserted) it->second = symbolize(s.pc[f]);
        if (!key.empty()) key += ';';
        key += it->second;
      }
      ++folded[key];
    }
  }
  return folded;
}

}  // namespace

Profiler::Profiler() : impl_(new Impl) { Impl::instance = impl_; }

Profiler& Profiler::global() {
  static Profiler* p = new Profiler;  // leaked: handler may fire at exit
  return *p;
}

bool Profiler::start(int hz) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->armed.load(std::memory_order_relaxed)) return false;
  if (VGP_FAILPOINT_SOFT("prof.signal")) return false;
  if (hz <= 0) hz = kDefaultHz;
  hz = std::min(hz, 1000);

  if (impl_->pool == nullptr) {
    impl_->pool = new ThreadRing[kMaxThreads];
  } else {
    for (int i = 0; i < kMaxThreads; ++i) {
      impl_->pool[i].head.store(0, std::memory_order_relaxed);
    }
  }
  impl_->dropped.store(0, std::memory_order_relaxed);
  impl_->hz = hz;

  // Prime backtrace(): its first call may dlopen libgcc_s (malloc +
  // loader lock). Do that here, on a normal stack, so the handler never
  // pays it.
  void* prime[4];
  (void)::backtrace(prime, 4);

  if (!impl_->handler_installed) {
    struct sigaction sa {};
    sa.sa_handler = &on_sigprof;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (::sigaction(SIGPROF, &sa, &impl_->prev_action) != 0) return false;
    impl_->handler_installed = true;
  }

  impl_->armed.store(true, std::memory_order_release);
  itimerval val{};
  const long usec = std::max(1000000L / hz, 1L);
  val.it_interval.tv_sec = usec / 1000000;
  val.it_interval.tv_usec = usec % 1000000;
  val.it_value = val.it_interval;
  if (::setitimer(ITIMER_PROF, &val, nullptr) != 0) {
    impl_->armed.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void Profiler::stop() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->armed.load(std::memory_order_relaxed)) return;
  itimerval off{};
  ::setitimer(ITIMER_PROF, &off, nullptr);
  impl_->armed.store(false, std::memory_order_release);
  // A signal already in flight sees armed == false and returns; the
  // handler stays installed for the next start().

  auto& reg = Registry::global();
  if (impl_->samples_gauge < 0) {
    impl_->samples_gauge = reg.gauge("profile.samples");
    impl_->dropped_gauge = reg.gauge("profile.dropped");
  }
  reg.set(impl_->samples_gauge, static_cast<double>(sample_count()));
  reg.set(impl_->dropped_gauge, static_cast<double>(dropped_count()));
}

bool Profiler::armed() const noexcept {
  return impl_->armed.load(std::memory_order_relaxed);
}

int Profiler::hz() const noexcept { return impl_->hz; }

std::uint64_t Profiler::sample_count() const noexcept {
  if (impl_->pool == nullptr) return 0;
  std::uint64_t total = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    total += impl_->pool[i].head.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Profiler::dropped_count() const noexcept {
  return impl_->dropped.load(std::memory_order_relaxed);
}

std::string Profiler::collapsed() const {
  std::string out;
  for (const auto& [stack, count] : fold_stacks(impl_->pool)) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::to_json() const {
  std::string out = "{\"schema\": \"vgp.profile.v1\", \"hz\": " +
                    std::to_string(impl_->hz) +
                    ", \"samples\": " + std::to_string(sample_count()) +
                    ", \"dropped\": " + std::to_string(dropped_count()) +
                    ", \"stacks\": [";
  bool first = true;
  for (const auto& [stack, count] : fold_stacks(impl_->pool)) {
    if (!first) out += ", ";
    first = false;
    out += "{\"frames\": [";
    std::size_t start = 0;
    bool first_frame = true;
    while (start <= stack.size()) {
      const std::size_t semi = stack.find(';', start);
      const std::string frame =
          stack.substr(start, semi == std::string::npos ? std::string::npos
                                                        : semi - start);
      if (!first_frame) out += ", ";
      first_frame = false;
      out += '"';
      for (const char c : frame) {  // symbol names: escape the JSON few
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
    out += "], \"count\": " + std::to_string(count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace vgp::telemetry
