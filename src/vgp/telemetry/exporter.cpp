#include "vgp/telemetry/exporter.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "vgp/support/log.hpp"
#include "vgp/telemetry/histogram.hpp"

namespace vgp::telemetry {
namespace {

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

/// Monotonic-counter guard across Registry::reset(): raw values that
/// move backwards fold the lost total into an offset (file comment in
/// exporter.hpp). Keyed by metric name; process-lifetime state.
struct CounterGuard {
  std::mutex mu;
  std::map<std::string, std::pair<double, double>> last_and_offset;

  double monotonic(const std::string& name, double raw) {
    std::lock_guard<std::mutex> lock(mu);
    auto& [last, offset] = last_and_offset[name];
    if (raw < last) offset += last;  // registry was reset between scrapes
    last = raw;
    return offset + raw;
  }
};

CounterGuard& counter_guard() {
  static auto* g = new CounterGuard;
  return *g;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "vgp_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus(const std::vector<MetricValue>& metrics) {
  std::string out;
  out.reserve(metrics.size() * 64);
  for (const MetricValue& m : metrics) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case Kind::Counter: {
        out += "# TYPE " + name + " counter\n";
        out += name + ' ';
        append_number(out, counter_guard().monotonic(m.name, m.value));
        out += '\n';
        break;
      }
      case Kind::Gauge: {
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ';
        append_number(out, m.value);
        out += '\n';
        break;
      }
      case Kind::Series: {
        // A series is an in-process array, not a time series the
        // scraper can reconstruct; expose its latest value and size.
        out += "# TYPE " + name + "_last gauge\n";
        out += name + "_last ";
        append_number(out, m.samples.empty() ? 0.0 : m.samples.back());
        out += '\n';
        out += "# TYPE " + name + "_count gauge\n";
        out += name + "_count ";
        append_number(out, static_cast<double>(m.samples.size()));
        out += '\n';
        break;
      }
      case Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.hist.buckets.size(); ++i) {
          if (m.hist.buckets[i] == 0) continue;  // elide empty buckets
          cumulative += m.hist.buckets[i];
          out += name + "_bucket{le=\"";
          append_number(out, Histogram::bucket_upper(static_cast<int>(i)));
          out += "\"} ";
          append_number(out, static_cast<double>(cumulative));
          out += '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        append_number(out, static_cast<double>(m.hist.count));
        out += '\n';
        out += name + "_sum ";
        append_number(out, m.hist.sum);
        out += '\n';
        out += name + "_count ";
        append_number(out, static_cast<double>(m.hist.count));
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string render_prometheus() {
  return render_prometheus(Registry::global().collect());
}

// ---------------------------------------------------------------------------
// Exporter thread

struct Exporter::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  std::atomic<bool> running{false};
  bool stop_requested = false;
  std::string path;
  double interval_s = 1.0;
  std::function<std::string()> producer;
  std::atomic<std::uint64_t> exports{0};

  /// Write-temp + rename so a concurrent scrape never reads half a file.
  bool write_atomic(const std::string& text) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  void run() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stop_requested) {
      lock.unlock();
      const std::string text = producer();
      if (!write_atomic(text)) {
        log::warn("exporter.write_failed").field("path", path);
      } else {
        exports.fetch_add(1, std::memory_order_relaxed);
      }
      lock.lock();
      cv.wait_for(lock,
                  std::chrono::duration<double>(interval_s),
                  [this] { return stop_requested; });
    }
  }
};

Exporter::Exporter() : impl_(new Impl) {}

Exporter& Exporter::global() {
  static auto* e = new Exporter;  // leaked: may be stopped during exit
  return *e;
}

bool Exporter::start(const std::string& path, double interval_s,
                     std::function<std::string()> producer) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->running) return false;
  impl_->path = path;
  impl_->interval_s = interval_s < 0.05 ? 0.05 : interval_s;
  impl_->producer =
      producer ? std::move(producer)
               : std::function<std::string()>(
                     static_cast<std::string (*)()>(&render_prometheus));
  // Probe writability now so a bad path fails the start() call instead
  // of warning once a second from the thread.
  if (!impl_->write_atomic(std::string())) return false;
  impl_->stop_requested = false;
  impl_->running = true;
  impl_->thread = std::thread([this] { impl_->run(); });
  return true;
}

void Exporter::stop() {
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (!impl_->running) return;
    impl_->stop_requested = true;
    impl_->cv.notify_all();
    to_join = std::move(impl_->thread);
    impl_->running = false;
  }
  if (to_join.joinable()) to_join.join();
  // One final export so the file reflects the end state.
  if (impl_->write_atomic(impl_->producer())) {
    impl_->exports.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Exporter::running() const noexcept {
  return impl_->running.load(std::memory_order_relaxed);
}

std::uint64_t Exporter::exports() const noexcept {
  return impl_->exports.load(std::memory_order_relaxed);
}

}  // namespace vgp::telemetry
