// Minimal JSON reader for the repo's own machine-readable outputs
// (vgp.telemetry.v1 metrics, vgp.trace.v1 Chrome traces, vgp.bench.v1
// summaries). Supports the full JSON value grammar — objects, arrays,
// strings with escapes (\uXXXX decodes to UTF-8, surrogate pairs
// included), numbers, booleans, null — with no external dependency; it
// exists so `vgp-report` and the round-trip tests can consume what the
// sinks emit, not as a general-purpose parser.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vgp::telemetry {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool bval = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  // Ordered map: deterministic iteration makes report output stable.
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const {
    if (type != Type::Object) return nullptr;
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }

  double number_or(double fallback) const {
    return type == Type::Number ? num : fallback;
  }
};

/// Parses `text`; returns false and fills `error` (with offset context)
/// on malformed input. Trailing garbage after the top-level value is an
/// error.
bool parse_json(const std::string& text, JsonValue& out, std::string* error);

/// Reads and parses a whole file. `error` distinguishes I/O failures
/// from parse failures.
bool parse_json_file(const std::string& path, JsonValue& out,
                     std::string* error);

}  // namespace vgp::telemetry
