// Phase-span tracing: a timeline complement to the metrics registry.
//
// The registry (registry.hpp) answers *how much* — counts, totals,
// distributions. Spans answer *when* and *inside what*: every traced
// scope becomes one interval on a per-thread track, nested by the call
// structure (Louvain level -> move phase -> reduce-scatter sweep), with
// key/value args (iteration, backend, moves applied) attached as the
// scope learns them. A run with `VGP_TRACE=<path>` (or the binaries'
// `--trace=` flag) writes a Chrome-trace-event JSON loadable in Perfetto
// / chrome://tracing, and every metrics snapshot additionally carries a
// compact per-span summary (`span.<name>.{count,total_ms,mean_ms}`) so
// `vgp-report` can diff runs without the full timeline.
//
// Cost contract (same as the registry):
//   * Disabled (the default): constructing a TraceSpan is one relaxed
//     bool load and a branch; arg() calls are a branch on the cached
//     decision. No allocation, no clock read, no buffer registration.
//   * Enabled: span begin/end are two steady_clock reads plus one append
//     into a per-thread ring buffer — single-producer, no atomics beyond
//     one release store of the committed size, no locks on the record
//     path (the buffer registers itself once per thread under a mutex,
//     exactly like the registry's counter shards). Buffers never wrap:
//     when one fills, further events on that thread are dropped and
//     counted (`trace.dropped` in the snapshot) rather than tearing the
//     timeline.
//   * Span granularity is phases and iterations, never 16-lane inner
//     loops — the same discipline kernels already follow for metrics.
//
// Hardware perf counters (perf_counters.hpp) attach to spans: when the
// tracer is enabled and the perf_event_open group could be opened, each
// span carries cycles / instructions / LLC-miss / branch-miss deltas and
// the exporter emits per-span IPC. Unavailability (typical in containers
// and CI) degrades to spans without counter args, with the verdict
// recorded as the `perf.available` gauge — never a failure.
//
// Span names must be string literals (or otherwise outlive the process):
// events store the pointer, not a copy. String arg values have the same
// contract (backend names, policy names — all static in this codebase).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vgp::telemetry {

/// One key/value pair attached to a span. `sval` non-null means a string
/// arg (static storage); otherwise `dval` holds a number.
struct SpanArg {
  const char* key = nullptr;
  const char* sval = nullptr;
  double dval = 0.0;
};

inline constexpr int kMaxSpanArgs = 6;

/// A completed span as stored in the per-thread ring buffer.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // since tracer epoch
  std::uint64_t dur_ns = 0;
  std::int32_t tid = 0;   // dense per-thread track id
  std::int32_t depth = 0; // nesting depth at begin (0 = top level)
  std::int32_t nargs = 0;
  SpanArg args[kMaxSpanArgs];
  // Perf-counter deltas over the span; valid only when has_perf is set.
  bool has_perf = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// Aggregate view of one span name, folded into metrics snapshots and
/// consumed by vgp-report.
struct SpanSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

/// Process-wide tracer singleton (mirrors telemetry::Registry).
class Tracer {
 public:
  static Tracer& global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Attach perf-counter deltas to spans (effective only where the
  /// perf_event_open probe succeeded). Defaults to on; VGP_TRACE_PERF=0
  /// opts out.
  void set_perf_enabled(bool on) noexcept;
  bool perf_enabled() const noexcept;

  /// Path flush_trace() writes to; set from VGP_TRACE or --trace=.
  void set_output_path(std::string path);
  std::string output_path() const;

  /// Events currently committed across all thread buffers (snapshot;
  /// racy against live writers by design — call at phase boundaries).
  std::uint64_t event_count() const;
  /// Events dropped because a thread buffer filled.
  std::uint64_t dropped_count() const;
  /// Thread buffers ever allocated — the disabled-mode overhead test
  /// asserts this stays zero.
  std::uint64_t buffers_allocated() const;

  /// Discards every committed event and zeroes the drop counter.
  /// Call only when no span is open (tests, between benchmark reps).
  void reset();

  /// Per-span aggregates over all committed events, sorted by name.
  std::vector<SpanSummary> summaries() const;

  /// Writes the Chrome-trace JSON to `out` (see docs/architecture.md for
  /// the event shape).
  void write_chrome_trace(std::ostream& out) const;

  struct Impl;  // named by the thread-local buffer destructor

 private:
  Tracer();
  Impl* impl_;  // leaked: worker threads may outlive main
};

/// Enables tracing and directs the process-exit flush at `path`
/// (idempotent), mirroring telemetry::enable_file_output.
void enable_trace_output(const std::string& path);

/// Writes the Chrome trace to the configured path. Returns false (and
/// writes nothing) when no path is configured or the file cannot be
/// written.
bool flush_trace();

/// RAII scoped span. Construct with a string literal; attach args as the
/// scope learns them. All methods are no-ops when the tracer was
/// disabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Numeric arg (iteration, moves applied, conflict rounds, ...).
  void arg(const char* key, double v);
  void arg(const char* key, std::int64_t v) { arg(key, static_cast<double>(v)); }
  void arg(const char* key, int v) { arg(key, static_cast<double>(v)); }
  /// String arg; `v` must have static storage (backend / policy names).
  void arg_str(const char* key, const char* v);

  bool active() const { return active_; }

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::int32_t nargs_ = 0;
  SpanArg args_[kMaxSpanArgs];
  bool active_ = false;
  bool perf_ = false;
  std::uint64_t perf_start_[4] = {0, 0, 0, 0};
};

}  // namespace vgp::telemetry
