#include "vgp/telemetry/trace.hpp"

#include "vgp/fault/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

#include "vgp/support/env.hpp"
#include "vgp/telemetry/perf_counters.hpp"
#include "vgp/telemetry/sink.hpp"

namespace vgp::telemetry {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread event buffer. Single producer (the owning thread); readers
/// see the committed prefix [0, size) via the release/acquire pair on
/// `size`. Never wraps: a full buffer drops and counts instead of
/// overwriting events a concurrent exporter may be reading.
struct ThreadBuffer {
  std::vector<SpanEvent> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::int32_t tid = 0;

  bool push(const SpanEvent& ev) {
    const std::size_t n = size.load(std::memory_order_relaxed);
    if (n >= events.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    events[n] = ev;
    size.store(n + 1, std::memory_order_release);
    return true;
  }
};

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;
  /// Buffers are owned here (never freed) so the exporter can read a
  /// thread's events after the thread exits.
  std::vector<ThreadBuffer*> buffers;
  std::atomic<bool> enabled{false};
  std::atomic<bool> perf{true};
  std::atomic<std::uint64_t> buffers_allocated{0};
  std::uint64_t epoch_ns = 0;
  std::string path;
  std::int32_t next_tid = 0;

  ThreadBuffer* make_buffer(std::size_t capacity) {
    auto* buf = new ThreadBuffer;  // leaked: outlives its thread
    buf->events.resize(capacity);
    std::lock_guard<std::mutex> lock(mu);
    buf->tid = next_tid++;
    buffers.push_back(buf);
    buffers_allocated.fetch_add(1, std::memory_order_relaxed);
    return buf;
  }
};

namespace {

Tracer::Impl* g_impl = nullptr;

std::size_t buffer_capacity() {
  // Parsed once and frozen (buffers size themselves at first traced
  // span); a malformed value must warn rather than silently shrink the
  // buffers to the default and drop events later.
  static const std::size_t cap = static_cast<std::size_t>(
      support::env_int("VGP_TRACE_BUFFER", std::int64_t{1} << 16, 1,
                       std::int64_t{1} << 28));
  return cap;
}

/// The calling thread's buffer, allocated on first traced span.
ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = g_impl->make_buffer(buffer_capacity());
  return *buf;
}

/// Span nesting depth of the calling thread (tracks only traced spans).
thread_local std::int32_t t_depth = 0;

}  // namespace

Tracer::Tracer() : impl_(new Impl) {
  g_impl = impl_;
  impl_->epoch_ns = steady_now_ns();
  if (!support::env_bool("VGP_TRACE_PERF", true)) {
    impl_->perf.store(false, std::memory_order_relaxed);
  }
  if (const char* env = std::getenv("VGP_TRACE")) {
    if (env[0] != '\0') {
      impl_->path = env;
      impl_->enabled.store(true, std::memory_order_relaxed);
      std::atexit([] { (void)telemetry::flush_trace(); });
    }
  }
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer;  // leaked: outlives pool threads
  return *t;
}

bool Tracer::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Tracer::set_enabled(bool on) noexcept {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

void Tracer::set_perf_enabled(bool on) noexcept {
  impl_->perf.store(on, std::memory_order_relaxed);
}

bool Tracer::perf_enabled() const noexcept {
  return impl_->perf.load(std::memory_order_relaxed);
}

void Tracer::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->path = std::move(path);
}

std::string Tracer::output_path() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->path;
}

std::uint64_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t n = 0;
  for (const ThreadBuffer* b : impl_->buffers) {
    n += b->size.load(std::memory_order_acquire);
  }
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t n = 0;
  for (const ThreadBuffer* b : impl_->buffers) {
    n += b->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Tracer::buffers_allocated() const {
  return impl_->buffers_allocated.load(std::memory_order_relaxed);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (ThreadBuffer* b : impl_->buffers) {
    b->size.store(0, std::memory_order_release);
    b->dropped.store(0, std::memory_order_relaxed);
  }
}

std::vector<SpanSummary> Tracer::summaries() const {
  std::map<std::string, SpanSummary> agg;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const ThreadBuffer* b : impl_->buffers) {
      const std::size_t n = b->size.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        const SpanEvent& ev = b->events[i];
        SpanSummary& s = agg[ev.name];
        if (s.name.empty()) s.name = ev.name;
        ++s.count;
        s.total_ms += static_cast<double>(ev.dur_ns) * 1e-6;
        if (ev.has_perf) {
          s.cycles += ev.cycles;
          s.instructions += ev.instructions;
        }
      }
    }
  }
  std::vector<SpanSummary> out;
  out.reserve(agg.size());
  for (auto& [name, s] : agg) out.push_back(std::move(s));
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\n\"otherData\": {\"schema\": \"vgp.trace.v1\", \"perf\": ";
  out << (PerfGroup::counters_available() ? "true" : "false");
  out << ", \"dropped\": " << dropped_count();
  out << "},\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";

  const auto put_num = [&out](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out << buf;
  };

  bool first = true;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const ThreadBuffer* b : impl_->buffers) {
    const std::size_t n = b->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const SpanEvent& ev = b->events[i];
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\": ";
      write_json_string(out, ev.name);
      out << ", \"cat\": \"vgp\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
          << ev.tid << ", \"ts\": ";
      put_num(static_cast<double>(ev.start_ns) * 1e-3);  // microseconds
      out << ", \"dur\": ";
      put_num(static_cast<double>(ev.dur_ns) * 1e-3);
      out << ", \"args\": {";
      bool afirst = true;
      for (std::int32_t a = 0; a < ev.nargs; ++a) {
        if (!afirst) out << ", ";
        afirst = false;
        write_json_string(out, ev.args[a].key);
        out << ": ";
        if (ev.args[a].sval != nullptr) {
          write_json_string(out, ev.args[a].sval);
        } else {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", ev.args[a].dval);
          out << buf;
        }
      }
      if (ev.has_perf) {
        if (!afirst) out << ", ";
        const double ipc =
            ev.cycles > 0 ? static_cast<double>(ev.instructions) /
                                static_cast<double>(ev.cycles)
                          : 0.0;
        out << "\"cycles\": " << ev.cycles
            << ", \"instructions\": " << ev.instructions
            << ", \"llc_misses\": " << ev.llc_misses
            << ", \"branch_misses\": " << ev.branch_misses << ", \"ipc\": ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", ipc);
        out << buf;
      }
      out << "}}";
    }
  }
  out << "\n]\n}\n";
}

void enable_trace_output(const std::string& path) {
  auto& tr = Tracer::global();
  tr.set_output_path(path);
  tr.set_enabled(true);
  static std::once_flag once;
  std::call_once(once,
                 [] { std::atexit([] { (void)telemetry::flush_trace(); }); });
}

bool flush_trace() {
  auto& tr = Tracer::global();
  const std::string path = tr.output_path();
  if (path.empty()) return false;
  if (VGP_FAILPOINT_SOFT("trace.export.open")) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  tr.write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  auto& tr = Tracer::global();
  if (!tr.enabled()) return;  // one relaxed load + this branch
  active_ = true;
  ++t_depth;
  if (tr.perf_enabled()) {
    PerfGroup& pg = PerfGroup::thread_local_group();
    if (pg.ok()) {
      perf_ = true;
      pg.read_raw(perf_start_);
    }
  }
  start_ns_ = steady_now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = steady_now_ns();
  SpanEvent ev;
  ev.name = name_;
  ev.start_ns = start_ns_ - g_impl->epoch_ns;
  ev.dur_ns = end_ns - start_ns_;
  ev.depth = --t_depth;
  ev.nargs = nargs_;
  std::copy(args_, args_ + nargs_, ev.args);
  if (perf_) {
    std::uint64_t end_raw[4];
    PerfGroup::thread_local_group().read_raw(end_raw);
    ev.has_perf = true;
    ev.cycles = end_raw[0] - perf_start_[0];
    ev.instructions = end_raw[1] - perf_start_[1];
    ev.llc_misses = end_raw[2] - perf_start_[2];
    ev.branch_misses = end_raw[3] - perf_start_[3];
  }
  ThreadBuffer& buf = local_buffer();
  ev.tid = buf.tid;
  buf.push(ev);
}

void TraceSpan::arg(const char* key, double v) {
  if (!active_ || nargs_ >= kMaxSpanArgs) return;
  args_[nargs_++] = SpanArg{key, nullptr, v};
}

void TraceSpan::arg_str(const char* key, const char* v) {
  if (!active_ || nargs_ >= kMaxSpanArgs) return;
  args_[nargs_++] = SpanArg{key, v, 0.0};
}

}  // namespace vgp::telemetry
