// Structured kernel telemetry (counters / gauges / series / histograms).
//
// The paper's figures are about *where* time goes inside the kernels —
// reduce-scatter method mix, conflict rounds, active-set decay, lane
// utilization — not just end-to-end seconds. This registry is the
// machine-readable instrument for that: kernels record named metrics,
// drivers flush one JSON/CSV file per run (`VGP_METRICS=<path>` or the
// binaries' `--metrics=` flag), and perf PRs diff the files.
//
// Cost contract:
//   * Disabled (the default): every record call is one relaxed bool load
//     and a branch. Kernels never call the registry from their inner
//     loops anyway — they accumulate into plain locals (the existing
//     OpTally discipline) and record once per iteration / per call.
//   * Enabled: counter adds go to a thread-local shard (plain uint64
//     adds, no atomics, no locks); shards are merged into the global
//     table at phase boundaries (collect()/merge(), called when the
//     thread pool is quiescent — the same model support/opcount uses).
//     Gauges, series, and histograms are recorded by the coordinating
//     thread at iteration granularity and take a mutex.
//
// The legacy support/opcount counters are folded into every snapshot as
// `ops.*` counters, so one metrics file carries both the structural
// per-kernel metrics and the coarse operation-class totals the energy
// model charges against.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vgp/support/timer.hpp"
#include "vgp/telemetry/histogram.hpp"
#include "vgp/telemetry/trace.hpp"

namespace vgp::telemetry {

enum class Kind { Counter, Gauge, Series, Histogram };

/// Dense index into the registry's metric table; stable for the process
/// lifetime (reset() zeroes values but never unregisters).
using MetricId = std::int32_t;

struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Log2 bucket counts (Histogram::kBuckets entries, indexed per
  /// Histogram::bucket_index). Empty only for histograms loaded from a
  /// pre-bucket metrics file; every live observe() fills them.
  std::vector<std::uint64_t> buckets;
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Quantile over `buckets` (upper-bound convention, `p` in [0,100]);
  /// 0 when empty or bucket-less.
  double percentile(double p) const;
};

/// One metric in a snapshot. `value` holds counters and gauges;
/// `samples` holds series; `hist` holds histograms.
struct MetricValue {
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;
  std::vector<double> samples;
  HistogramData hist;
};

/// Process-wide metric registry (singleton, like the thread pool).
/// Registration is idempotent by name and thread-safe; the returned ids
/// index a per-thread shard so the record path needs no hashing.
class Registry {
 public:
  static Registry& global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or looks up) a metric; throws std::invalid_argument when
  /// the name is already registered with a different kind.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId series(std::string_view name);
  MetricId histogram(std::string_view name);

  bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Counter increment into the calling thread's shard. No-op when
  /// disabled. Safe from any thread; never takes a lock after the
  /// thread's shard exists.
  void add(MetricId id, double v = 1.0);
  /// Gauge write (last value wins). No-op when disabled.
  void set(MetricId id, double v);
  /// Appends one sample to a series (e.g. per-iteration move counts).
  /// No-op when disabled.
  void append(MetricId id, double v);
  /// Histogram observation. No-op when disabled. Fills the metric's
  /// log2 buckets as well as count/sum/min/max, so every registry
  /// histogram carries p50/p99 in its snapshots.
  void observe(MetricId id, double v);

  /// Registers `name` as a histogram whose data is read from `h` at
  /// collect() time instead of via observe(). This is how always-on
  /// wait-free histograms (the serve latency path observes on every
  /// request regardless of telemetry state) surface in snapshots
  /// without double bookkeeping. `h` must stay valid until
  /// detach_histogram (or process exit). Idempotent per name; the last
  /// pointer wins.
  MetricId attach_histogram(std::string_view name, const Histogram* h);

  /// Severs an attach_histogram binding before `h` dies (e.g. a serve
  /// Server being destroyed). The metric's last-collected data is
  /// copied into the snapshot storage first, so the final flush still
  /// carries it. No-op when `name` is currently attached to a
  /// different histogram.
  void detach_histogram(std::string_view name, const Histogram* h);

  /// Folds every thread shard into the global table. Call only when no
  /// kernel is concurrently recording (phase boundary / pool idle).
  void merge();

  /// merge() + snapshot of every registered metric, plus the opcount
  /// totals folded in as `ops.*` counters.
  std::vector<MetricValue> collect();

  /// Zeroes every metric and shard (registrations survive) and resets
  /// the opcount blocks.
  void reset();

  /// Path flush() writes to; set from VGP_METRICS or --metrics=.
  void set_output_path(std::string path);
  std::string output_path() const;

  struct Impl;  // public so the thread-shard TU-locals can name it

 private:
  Registry();
  Impl* impl_;  // never freed: worker threads may outlive main
};

/// Enables telemetry, directs flush() at `path`, and registers a
/// process-exit flush (idempotent). A path ending in ".csv" selects the
/// CSV sink; anything else gets JSON.
void enable_file_output(const std::string& path);

/// Writes the current snapshot to the configured output path. Returns
/// false (and writes nothing) when no path is configured.
bool flush();

/// RAII wall-clock phase timer: observes the scope's duration into
/// histogram "phase.<name>.seconds" and — when the tracer is enabled —
/// emits a trace span of the same name, so every existing phase shows
/// up on the timeline for free. Near-free when both are disabled (two
/// clock reads, one relaxed load, no registry traffic).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  /// The phase's trace span; call sites attach args (iterations, backend
  /// names) as the phase learns them. No-op when tracing is disabled.
  TraceSpan& span() { return span_; }

 private:
  const char* name_;
  TraceSpan span_;
  WallTimer timer_;
};

}  // namespace vgp::telemetry
