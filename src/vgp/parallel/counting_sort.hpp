// Deterministic parallel counting sort / bucket partitioner.
//
// The textbook parallel counting sort keeps one histogram per *thread*,
// which makes the output depend on which thread ran which slice. These
// helpers keep one histogram per fixed-size *chunk* instead — chunk
// boundaries depend only on the domain size — so after one
// parallel_prefix_sum over the bucket-major (bucket, chunk) counts
// matrix every chunk owns an exclusive, precomputed destination range
// per bucket. The scatter needs no atomics, and every output byte is
// identical for any pool width. This is the distribution engine behind
// Graph::from_edges and community::coarsen (FlashMob-style
// sort-then-merge instead of hash-scatter aggregation).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "vgp/parallel/scan.hpp"
#include "vgp/parallel/thread_pool.hpp"

namespace vgp {

/// Distributes the products of a chunked producer into bucket-grouped
/// order. The input domain [0, domain) is cut into fixed chunks of
/// `grain` indices; `count(first, last, add)` and `emit(first, last,
/// put)` each iterate one chunk and must produce identical bucket
/// sequences — `add(bucket)` reserves a slot, `put(bucket, item)` fills
/// it. Items within a bucket keep producer order (stable), and the
/// output is independent of the thread count. On return,
/// `bucket_begin[b] .. bucket_begin[b+1]` spans bucket b.
template <typename T, typename CountFn, typename EmitFn>
std::vector<T> bucket_partition(std::int64_t domain, std::int64_t num_buckets,
                                std::int64_t grain, CountFn count, EmitFn emit,
                                std::vector<std::uint64_t>& bucket_begin) {
  if (grain < 1) grain = 1;
  const std::int64_t nchunks = domain > 0 ? (domain + grain - 1) / grain : 0;
  bucket_begin.assign(static_cast<std::size_t>(num_buckets) + 1, 0);
  if (nchunks == 0) return {};

  // Bucket-major counts matrix: cell (b, c) counts chunk c's items for
  // bucket b, so one exclusive scan turns it into scatter ranks.
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(num_buckets * nchunks), 0);
  parallel_for(0, nchunks, 1, [&](std::int64_t cf, std::int64_t cl) {
    for (std::int64_t c = cf; c < cl; ++c) {
      std::uint64_t* cell = counts.data() + c;  // stride nchunks per bucket
      count(c * grain, std::min(domain, (c + 1) * grain),
            [&](std::int64_t bucket) { ++cell[bucket * nchunks]; });
    }
  });

  const std::uint64_t total =
      parallel_prefix_sum(std::span<std::uint64_t>(counts));
  for (std::int64_t b = 0; b < num_buckets; ++b) {
    bucket_begin[static_cast<std::size_t>(b)] =
        counts[static_cast<std::size_t>(b * nchunks)];
  }
  bucket_begin[static_cast<std::size_t>(num_buckets)] = total;

  std::vector<T> out(static_cast<std::size_t>(total));
  parallel_for(0, nchunks, 1, [&](std::int64_t cf, std::int64_t cl) {
    for (std::int64_t c = cf; c < cl; ++c) {
      // Each (bucket, chunk) cell is owned by exactly this chunk, so the
      // scanned counts double as scatter cursors in place.
      std::uint64_t* cursor = counts.data() + c;
      emit(c * grain, std::min(domain, (c + 1) * grain),
           [&](std::int64_t bucket, const T& item) {
             out[cursor[bucket * nchunks]++] = item;
           });
    }
  });
  return out;
}

/// Counting sort of `in` into `out` (same length) grouped by
/// key(item) ∈ [0, num_buckets), stable within each bucket and
/// deterministic across thread counts. Optionally reports bucket
/// boundaries (size num_buckets + 1).
template <typename T, typename KeyFn>
void parallel_counting_sort(std::span<const T> in, std::span<T> out,
                            std::int64_t num_buckets, KeyFn key,
                            std::vector<std::uint64_t>* bucket_begin_out = nullptr,
                            std::int64_t grain = 1 << 14) {
  std::vector<std::uint64_t> bucket_begin;
  std::vector<T> grouped = bucket_partition<T>(
      static_cast<std::int64_t>(in.size()), num_buckets, grain,
      [&](std::int64_t first, std::int64_t last, auto add) {
        for (std::int64_t i = first; i < last; ++i) {
          add(key(in[static_cast<std::size_t>(i)]));
        }
      },
      [&](std::int64_t first, std::int64_t last, auto put) {
        for (std::int64_t i = first; i < last; ++i) {
          const T& item = in[static_cast<std::size_t>(i)];
          put(key(item), item);
        }
      },
      bucket_begin);
  std::copy(grouped.begin(), grouped.end(), out.begin());
  if (bucket_begin_out != nullptr) *bucket_begin_out = std::move(bucket_begin);
}

}  // namespace vgp
