// Fixed-size thread pool with blocking parallel-for.
//
// The paper's kernels are bulk-synchronous: one parallel loop over the
// vertex (or conflict) set per round. A simple pool with a shared atomic
// chunk cursor covers that pattern with good load balance (dynamic
// scheduling mirrors OpenMP `schedule(dynamic, grain)` which the reference
// codes use for skewed-degree graphs).
//
// Socket awareness: on a multi-socket machine the pool pins each worker
// to one socket and `parallel_for(..., Placement::kBySocket, ...)`
// splits the iteration space into one contiguous chunk-aligned segment
// per socket, each with its own cursor. Socket-s workers drain socket
// s's segment first — which is exactly the slice of a `--numa=bind`
// Buffer that lives on socket s's node — and steal from other segments
// only once their own runs dry. The chunk decomposition is identical to
// the single-cursor path (segment boundaries fall on grain multiples),
// so any algorithm that folds per-chunk partials in chunk order stays
// bit-identical whichever placement is used. On single-socket machines
// every placement degenerates to the classic shared cursor.
//
// Thread count resolution order: explicit argument > VGP_THREADS env var >
// std::thread::hardware_concurrency(). Socket count: explicit
// force_sockets argument > VGP_FORCE_SOCKETS env var (both test knobs;
// they split segments without pinning) > detected topology.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vgp {

/// How parallel_for distributes chunks over workers.
enum class Placement {
  kAuto,      ///< one shared cursor, pure dynamic scheduling
  kBySocket,  ///< per-socket segments + work stealing (NUMA affinity)
};

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 resolves via VGP_THREADS / hardware.
  explicit ThreadPool(unsigned threads = 0);
  /// Test knob: pretends the machine has `force_sockets` sockets so the
  /// by-socket segmentation runs (unpinned) on any machine; 0 detects.
  ThreadPool(unsigned threads, int force_sockets);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const noexcept { return num_threads_; }
  /// Socket groups this pool schedules by (1 on single-socket machines
  /// unless forced higher for testing).
  int num_sockets() const noexcept { return num_sockets_; }

  /// Runs fn(begin..end) split into chunks of `grain` indices, dynamically
  /// scheduled. fn receives (first, last) half-open index ranges. Blocks
  /// until the whole range is processed. Reentrant calls from worker
  /// threads are executed inline (sequentially) to avoid deadlock.
  ///
  /// If fn throws, the remaining chunks are abandoned, every participant
  /// winds down, and the FIRST exception is rethrown here on the calling
  /// thread (instead of std::terminate from a worker). The pool remains
  /// usable afterwards; which chunks completed is unspecified.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Same, with an explicit placement hint. The chunk set — and thus
  /// any chunk-order fold — is identical for every placement; only
  /// which worker runs which chunk changes.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    Placement placement,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// The process-wide default pool (lazily constructed).
  static ThreadPool& global();

  /// Resolves a requested thread count the same way the constructor does.
  static unsigned resolve_threads(unsigned requested);

 private:
  struct Job;
  void worker_loop(int home_socket);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  /// Serializes top-level parallel_for calls: there is a single published
  /// job slot, so a second submitter must wait for the first job to be
  /// fully drained and unpublished before installing its own. Held from
  /// publish through wait to unpublish; nested (worker) calls run inline
  /// and never take it.
  std::mutex submit_mutex_;
  void* job_ = nullptr;           // shared_ptr<Job>* of current job, guarded by mutex_
  std::uint64_t job_seq_ = 0;     // bumped per job so workers notice new work
  bool stop_ = false;
  unsigned num_threads_ = 1;
  int num_sockets_ = 1;
  bool pin_workers_ = false;      // real multi-socket topology, not forced
};

/// Convenience wrappers over ThreadPool::global() (or the ScopedPool
/// override, when one is active).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Placement placement,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Temporarily reroutes the free vgp::parallel_for() through `pool`
/// instead of ThreadPool::global(); the previous routing is restored on
/// destruction. The deterministic construction/coarsening pipelines
/// produce identical output at any width, and this is how tests and
/// benches prove it within one process (the global pool's width is fixed
/// at first use). Process-wide: do not open scopes concurrently from
/// different threads.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool& pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* prev_;
};

}  // namespace vgp
