// Blocked parallel prefix sum (scan).
//
// Three-phase scan: per-block sums in parallel, a short sequential scan
// over the block sums, then a parallel rewrite pass. Deterministic by
// construction: block boundaries depend only on the input length, never
// on the pool width, so any VGP_THREADS setting produces identical
// output — the property the graph-construction pipeline's
// rank-partitioned scatter relies on (coarse graphs must be
// bit-identical across thread counts).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "vgp/parallel/thread_pool.hpp"

namespace vgp {

/// In-place exclusive prefix sum over `data`; returns the grand total
/// (what an element one past the end would hold). `block` is the scan
/// block length — a tuning knob, not a correctness one.
template <typename T>
T parallel_prefix_sum(std::span<T> data, std::int64_t block = 1 << 15) {
  const auto n = static_cast<std::int64_t>(data.size());
  if (n == 0) return T{0};
  if (block < 1) block = 1;
  const std::int64_t nblocks = (n + block - 1) / block;

  std::vector<T> block_sum(static_cast<std::size_t>(nblocks));
  parallel_for(0, nblocks, 1, [&](std::int64_t first, std::int64_t last) {
    for (std::int64_t b = first; b < last; ++b) {
      const std::int64_t lo = b * block;
      const std::int64_t hi = std::min(n, lo + block);
      T sum{0};
      for (std::int64_t i = lo; i < hi; ++i) {
        sum += data[static_cast<std::size_t>(i)];
      }
      block_sum[static_cast<std::size_t>(b)] = sum;
    }
  });

  T total{0};
  for (std::int64_t b = 0; b < nblocks; ++b) {
    const T s = block_sum[static_cast<std::size_t>(b)];
    block_sum[static_cast<std::size_t>(b)] = total;
    total += s;
  }

  parallel_for(0, nblocks, 1, [&](std::int64_t first, std::int64_t last) {
    for (std::int64_t b = first; b < last; ++b) {
      const std::int64_t lo = b * block;
      const std::int64_t hi = std::min(n, lo + block);
      T running = block_sum[static_cast<std::size_t>(b)];
      for (std::int64_t i = lo; i < hi; ++i) {
        const T v = data[static_cast<std::size_t>(i)];
        data[static_cast<std::size_t>(i)] = running;
        running += v;
      }
    }
  });
  return total;
}

}  // namespace vgp
