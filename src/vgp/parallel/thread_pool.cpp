#include "vgp/parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "vgp/fault/failpoint.hpp"
#include "vgp/support/cpu.hpp"
#include "vgp/support/env.hpp"

namespace vgp {
namespace {

/// Socket-group count: an explicit force wins, then VGP_FORCE_SOCKETS
/// (both are test knobs that segment without pinning), then topology.
int resolve_sockets(int forced, bool& pinned) {
  pinned = false;
  if (forced > 0) return forced;
  const std::int64_t v = support::env_int("VGP_FORCE_SOCKETS", 0, 1, 64);
  if (v > 0) return static_cast<int>(v);
  const SocketTopology& topo = socket_topology();
  pinned = topo.multi_socket();
  return topo.num_sockets();
}

/// Best-effort: confine the calling thread to its socket's CPUs so its
/// first-touch pages and cache working set stay on one node. Failure is
/// harmless (the scheduler just keeps its freedom).
void pin_to_socket(int socket) {
#if defined(__linux__)
  const SocketTopology& topo = socket_topology();
  if (socket < 0 || socket >= topo.num_sockets()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const int cpu : topo.sockets[static_cast<std::size_t>(socket)].cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (any) pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)socket;
#endif
}

}  // namespace

struct ThreadPool::Job {
  std::int64_t end = 0;
  std::int64_t grain = 1;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  /// One cursor per socket segment (kAuto jobs have a single segment).
  /// Segment boundaries fall on chunk boundaries, so the set of
  /// (first, last) chunks handed to fn is exactly what one shared
  /// cursor would produce.
  struct Segment {
    std::atomic<std::int64_t> cursor{0};
    std::int64_t end = 0;
  };
  std::unique_ptr<Segment[]> segs;
  int nseg = 1;
  std::atomic<unsigned> active{0};
  std::atomic<bool> done{false};
  // First exception thrown by any participant; later ones are dropped.
  // Without this a worker exception would escape worker_loop and
  // std::terminate the process. Only the `failed` CAS winner writes
  // `error`; the caller reads it after the done-flag acquire.
  std::atomic<bool> failed{false};
  std::exception_ptr error;

  bool all_drained() const {
    for (int s = 0; s < nseg; ++s) {
      if (segs[s].cursor.load(std::memory_order_relaxed) < segs[s].end)
        return false;
    }
    return true;
  }

  void abandon() {
    for (int s = 0; s < nseg; ++s)
      segs[s].cursor.store(segs[s].end, std::memory_order_relaxed);
  }

  // A worker that wakes after the range is drained exits via the cursor
  // checks without touching `fn` (whose referent lives on the caller's
  // stack); the Job itself is kept alive by the worker's shared_ptr copy.
  // `home` biases which segment is drained first: a socket-s worker
  // works its own segment and only then steals from the others.
  void run_chunks(int home) {
    for (int k = 0; k < nseg; ++k) {
      Segment& seg = segs[(home + k) % nseg];
      for (;;) {
        const std::int64_t first =
            seg.cursor.fetch_add(grain, std::memory_order_relaxed);
        if (first >= seg.end) break;
        const std::int64_t last = std::min(first + grain, seg.end);
        try {
          VGP_FAILPOINT("pool.worker.task");
          (*fn)(first, last);
        } catch (...) {
          bool expected = false;
          if (failed.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
            error = std::current_exception();
          }
          // Drain the remaining chunks so every participant (and the done
          // flag's drain check) winds down promptly.
          abandon();
          return;
        }
      }
    }
  }
};

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  // ThreadPool::global() fixes its width at first use, so a malformed
  // VGP_THREADS silently pinning the pool to the hardware default would
  // be invisible for the rest of the process. env_int rejects garbage
  // ("1O", "-3", "8 threads") with a one-time warning naming the
  // offending string, matching the VGP_BACKEND precedent.
  const std::int64_t v = support::env_int("VGP_THREADS", 0, 1, 1 << 16);
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) : ThreadPool(threads, 0) {}

ThreadPool::ThreadPool(unsigned threads, int force_sockets) {
  num_threads_ = resolve_threads(threads);
  num_sockets_ = resolve_sockets(force_sockets, pin_workers_);
  if (num_sockets_ < 1) num_sockets_ = 1;
  // The calling thread participates in every parallel_for, so spawn one
  // fewer worker than the requested width. Worker i's home socket is
  // i+1 mod S (the caller takes segment 0), spreading the pool evenly
  // over socket groups.
  const unsigned workers = num_threads_ > 0 ? num_threads_ - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    const int home = static_cast<int>((i + 1) % static_cast<unsigned>(
                                                   num_sockets_));
    workers_.emplace_back([this, home] { worker_loop(home); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(int home_socket) {
  if (pin_workers_) pin_to_socket(home_socket);
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen_seq); });
      if (stop_) return;
      job = *static_cast<std::shared_ptr<Job>*>(job_);
      seen_seq = job_seq_;
      job->active.fetch_add(1, std::memory_order_acq_rel);
    }
    job->run_chunks(home_socket % job->nseg);
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        job->all_drained()) {
      job->done.store(true, std::memory_order_release);
      job->done.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  parallel_for(begin, end, grain, Placement::kAuto, fn);
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    Placement placement,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;

  // Sequential fast path: tiny ranges, no workers, or a nested call from a
  // worker thread (which must not block on the pool it is serving).
  static thread_local bool inside_pool_job = false;
  if (workers_.empty() || inside_pool_job || end - begin <= grain) {
    VGP_FAILPOINT("pool.worker.task");
    fn(begin, end);
    return;
  }

  // Segment the chunk index space [0, chunks) contiguously per socket;
  // converting back to element indices keeps every boundary on a grain
  // multiple, so chunk (first, last) pairs match the kAuto decomposition.
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  int nseg = placement == Placement::kBySocket ? num_sockets_ : 1;
  if (static_cast<std::int64_t>(nseg) > chunks)
    nseg = static_cast<int>(chunks);
  if (nseg < 1) nseg = 1;

  auto job = std::make_shared<Job>();
  job->end = end;
  job->grain = grain;
  job->fn = &fn;
  job->nseg = nseg;
  job->segs = std::make_unique<Job::Segment[]>(static_cast<std::size_t>(nseg));
  for (int s = 0; s < nseg; ++s) {
    const std::int64_t chunk_lo = chunks * s / nseg;
    const std::int64_t chunk_hi = chunks * (s + 1) / nseg;
    job->segs[s].cursor.store(begin + chunk_lo * grain,
                              std::memory_order_relaxed);
    job->segs[s].end = std::min(begin + chunk_hi * grain, end);
  }
  // The caller counts as an active participant from the start, so `done`
  // can only flip to true after the caller and every registered worker
  // have drained their chunks.
  job->active.store(1, std::memory_order_relaxed);

  // One published job at a time: without this, two outside threads calling
  // parallel_for concurrently would overwrite each other's job_/job_seq_
  // and a caller could wait forever on a job no worker ever saw.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++job_seq_;
  }
  cv_.notify_all();

  inside_pool_job = true;
  job->run_chunks(0);  // the caller's home is segment 0
  inside_pool_job = false;

  if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job->done.store(true, std::memory_order_release);
  } else {
    job->done.wait(false, std::memory_order_acquire);
  }

  // Unpublish. Workers that grabbed a shared_ptr keep the Job alive; their
  // cursor checks keep them away from `fn`.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = nullptr;
  }

  // Containment: the first exception any participant threw surfaces
  // here, at the join point, instead of std::terminate-ing the process
  // from a worker thread. The pool stays usable afterwards.
  if (job->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {
std::atomic<ThreadPool*> g_pool_override{nullptr};
}  // namespace

ScopedPool::ScopedPool(ThreadPool& pool)
    : prev_(g_pool_override.exchange(&pool, std::memory_order_acq_rel)) {}

ScopedPool::~ScopedPool() {
  g_pool_override.store(prev_, std::memory_order_release);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool* pool = g_pool_override.load(std::memory_order_acquire);
  (pool != nullptr ? *pool : ThreadPool::global())
      .parallel_for(begin, end, grain, fn);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Placement placement,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool* pool = g_pool_override.load(std::memory_order_acquire);
  (pool != nullptr ? *pool : ThreadPool::global())
      .parallel_for(begin, end, grain, placement, fn);
}

}  // namespace vgp
