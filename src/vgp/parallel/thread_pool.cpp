#include "vgp/parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "vgp/fault/failpoint.hpp"
#include "vgp/support/env.hpp"

namespace vgp {

struct ThreadPool::Job {
  std::int64_t end = 0;
  std::int64_t grain = 1;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> cursor{0};
  std::atomic<unsigned> active{0};
  std::atomic<bool> done{false};
  // First exception thrown by any participant; later ones are dropped.
  // Without this a worker exception would escape worker_loop and
  // std::terminate the process. Only the `failed` CAS winner writes
  // `error`; the caller reads it after the done-flag acquire.
  std::atomic<bool> failed{false};
  std::exception_ptr error;

  // A worker that wakes after the range is drained exits via the cursor
  // check without touching `fn` (whose referent lives on the caller's
  // stack); the Job itself is kept alive by the worker's shared_ptr copy.
  void run_chunks() {
    for (;;) {
      const std::int64_t first = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (first >= end) break;
      const std::int64_t last = std::min(first + grain, end);
      try {
        VGP_FAILPOINT("pool.worker.task");
        (*fn)(first, last);
      } catch (...) {
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
          error = std::current_exception();
        }
        // Drain the remaining chunks so every participant (and the done
        // flag's cursor check) winds down promptly.
        cursor.store(end, std::memory_order_relaxed);
        break;
      }
    }
  }
};

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  // ThreadPool::global() fixes its width at first use, so a malformed
  // VGP_THREADS silently pinning the pool to the hardware default would
  // be invisible for the rest of the process. env_int rejects garbage
  // ("1O", "-3", "8 threads") with a one-time warning naming the
  // offending string, matching the VGP_BACKEND precedent.
  const std::int64_t v = support::env_int("VGP_THREADS", 0, 1, 1 << 16);
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  num_threads_ = resolve_threads(threads);
  // The calling thread participates in every parallel_for, so spawn one
  // fewer worker than the requested width.
  const unsigned workers = num_threads_ > 0 ? num_threads_ - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen_seq); });
      if (stop_) return;
      job = *static_cast<std::shared_ptr<Job>*>(job_);
      seen_seq = job_seq_;
      job->active.fetch_add(1, std::memory_order_acq_rel);
    }
    job->run_chunks();
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        job->cursor.load(std::memory_order_relaxed) >= job->end) {
      job->done.store(true, std::memory_order_release);
      job->done.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;

  // Sequential fast path: tiny ranges, no workers, or a nested call from a
  // worker thread (which must not block on the pool it is serving).
  static thread_local bool inside_pool_job = false;
  if (workers_.empty() || inside_pool_job || end - begin <= grain) {
    VGP_FAILPOINT("pool.worker.task");
    fn(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->end = end;
  job->grain = grain;
  job->fn = &fn;
  job->cursor.store(begin, std::memory_order_relaxed);
  // The caller counts as an active participant from the start, so `done`
  // can only flip to true after the caller and every registered worker
  // have drained their chunks.
  job->active.store(1, std::memory_order_relaxed);

  // One published job at a time: without this, two outside threads calling
  // parallel_for concurrently would overwrite each other's job_/job_seq_
  // and a caller could wait forever on a job no worker ever saw.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++job_seq_;
  }
  cv_.notify_all();

  inside_pool_job = true;
  job->run_chunks();
  inside_pool_job = false;

  if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job->done.store(true, std::memory_order_release);
  } else {
    job->done.wait(false, std::memory_order_acquire);
  }

  // Unpublish. Workers that grabbed a shared_ptr keep the Job alive; their
  // cursor check keeps them away from `fn`.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = nullptr;
  }

  // Containment: the first exception any participant threw surfaces
  // here, at the join point, instead of std::terminate-ing the process
  // from a worker thread. The pool stays usable afterwards.
  if (job->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {
std::atomic<ThreadPool*> g_pool_override{nullptr};
}  // namespace

ScopedPool::ScopedPool(ThreadPool& pool)
    : prev_(g_pool_override.exchange(&pool, std::memory_order_acq_rel)) {}

ScopedPool::~ScopedPool() {
  g_pool_override.store(prev_, std::memory_order_release);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool* pool = g_pool_override.load(std::memory_order_acquire);
  (pool != nullptr ? *pool : ThreadPool::global())
      .parallel_for(begin, end, grain, fn);
}

}  // namespace vgp
