// Concurrent fixed-size bitmap.
//
// Speculative coloring and label propagation maintain vertex sets (CONF,
// V_active) that many threads update concurrently. A word-per-64-bits
// bitmap with fetch_or/fetch_and is race-free, compact, and iterates in
// vertex order, which keeps the round structure deterministic enough for
// testing.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace vgp {

class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<std::uint64_t>>((bits + 63) / 64);
  }

  std::size_t size() const noexcept { return bits_; }

  /// Atomically sets bit i; returns true when this call flipped it 0->1.
  bool set(std::size_t i) noexcept {
    const std::uint64_t mask = 1ull << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  /// Atomically clears bit i; returns true when this call flipped it 1->0.
  bool clear(std::size_t i) noexcept {
    const std::uint64_t mask = 1ull << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_and(~mask, std::memory_order_relaxed);
    return (old & mask) != 0;
  }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1u;
  }

  void clear_all() noexcept {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  void set_all() noexcept {
    for (auto& w : words_) w.store(~0ull, std::memory_order_relaxed);
    trim_tail();
  }

  /// Population count (sequential; call between parallel phases).
  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto& w : words_)
      c += static_cast<std::size_t>(__builtin_popcountll(w.load(std::memory_order_relaxed)));
    return c;
  }

  /// Appends the indices of all set bits to `out` in increasing order.
  void collect(std::vector<std::int32_t>& out) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        out.push_back(static_cast<std::int32_t>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

 private:
  void trim_tail() noexcept {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back().store((1ull << tail) - 1, std::memory_order_relaxed);
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace vgp
