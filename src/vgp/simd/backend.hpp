// Kernel backend selection.
//
// Every algorithm in the library has a scalar implementation and (when the
// translation units were compiled with AVX-512 support) a vector one. The
// backend is picked at runtime:
//   * Backend::Auto resolves to Avx512 when the CPU reports AVX-512F+CD
//     and the library was built with VGP_ENABLE_AVX512, else Scalar;
//   * the VGP_BACKEND environment variable ("scalar"/"avx512") overrides
//     Auto resolution, which makes A/B runs trivial from the shell.
//
// Scatter emulation: the paper's SkylakeX-vs-CascadeLake contrast comes
// from scatter micro-architecture quality. With a single host CPU we
// reproduce the qualitative gap by optionally routing every vector scatter
// through a sequential software loop (see DESIGN.md Substitutions). The
// toggle is process-global and read once per kernel invocation.
#pragma once

#include <string>

namespace vgp::simd {

enum class Backend { Auto, Scalar, Avx512 };

/// True when AVX-512 kernels exist in this binary AND the CPU supports
/// them.
bool avx512_kernels_available();

/// Resolves Auto (env override included); returns Scalar for Avx512
/// requests on machines that cannot run them.
Backend resolve(Backend requested);

const char* backend_name(Backend b);
Backend parse_backend(const std::string& name);  // "auto"/"scalar"/"avx512"

/// Emulated-slow-scatter toggle (models a weak-scatter microarchitecture).
void set_emulate_slow_scatter(bool on);
bool emulate_slow_scatter();

}  // namespace vgp::simd
