// Kernel backend selection.
//
// Every algorithm in the library has a scalar implementation and, when the
// matching translation units were compiled in, mid-width AVX2 (8-lane) and
// AVX-512 (16-lane) variants. The backend is picked at runtime:
//   * Backend::Auto resolves to the widest tier whose kernels are both
//     compiled in AND reported by CPUID (AVX-512F+CD for Avx512, AVX2 for
//     Avx2), else Scalar;
//   * an explicit request degrades down the tier chain
//     avx512 -> avx2 -> scalar when the requested tier cannot run;
//   * the VGP_BACKEND environment variable
//     ("scalar"/"avx2"/"avx512") overrides Auto resolution, which makes
//     A/B runs trivial from the shell. It is read and parsed exactly once
//     per process (first resolve), never per kernel invocation.
//
// Which function actually runs for a given kernel family is decided by the
// dispatch registry (registry.hpp): resolve() picks the hardware tier,
// select<Kernel>() then drops further down the chain when a family has no
// variant registered at that tier, recording every decision in telemetry.
//
// Scatter emulation: the paper's SkylakeX-vs-CascadeLake contrast comes
// from scatter micro-architecture quality. With a single host CPU we
// reproduce the qualitative gap by optionally routing every vector scatter
// through a sequential software loop (see DESIGN.md Substitutions). The
// toggle is process-global and read once per kernel invocation.
#pragma once

#include <string>

namespace vgp::simd {

enum class Backend { Auto, Scalar, Avx2, Avx512 };

/// True when AVX-512 kernels exist in this binary AND the CPU supports
/// them.
bool avx512_kernels_available();

/// True when the AVX2 kernel translation units exist in this binary AND
/// the CPU reports AVX2.
bool avx2_kernels_available();

/// Resolves Auto (env override included) to the widest available tier and
/// degrades explicit requests down the avx512 -> avx2 -> scalar chain
/// when the requested tier cannot run on this build/CPU. Never returns
/// Auto. The VGP_BACKEND lookup behind Auto is cached per process.
Backend resolve(Backend requested);

/// The cached VGP_BACKEND override, or Auto when the variable is unset or
/// unparsable. The execution planner (plan/planner.hpp) consults this so a
/// hard env override short-circuits planning entirely.
Backend env_backend_override();

const char* backend_name(Backend b);
/// Parses "auto"/"scalar"/"avx2"/"avx512"; throws std::invalid_argument
/// naming the offending string (and the accepted values) otherwise.
Backend parse_backend(const std::string& name);

/// Emulated-slow-scatter toggle (models a weak-scatter microarchitecture).
void set_emulate_slow_scatter(bool on);
bool emulate_slow_scatter();

}  // namespace vgp::simd
