// AVX-512 reduce-scatter kernels (see reduce_scatter.hpp for the
// algorithm descriptions). Compiled with -mavx512f -mavx512cd.
#include <string>

#include "vgp/simd/avx512_common.hpp"
#include "vgp/simd/reduce_scatter.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::simd {
namespace {

/// One masked gather+add+scatter over lanes in `m` (indices distinct).
inline void vector_accumulate(float* table, __mmask16 m, __m512i vidx,
                              __m512 vval, bool slow) {
  const __m512 cur =
      _mm512_mask_i32gather_ps(_mm512_setzero_ps(), m, vidx, table, 4);
  const __m512 sum = _mm512_add_ps(cur, vval);
  scatter_ps(table, m, vidx, sum, slow);
}

/// Per-call lane accounting, flushed once per kernel invocation (never
/// from the chunk loop): how many of the issued lanes went through the
/// vector path vs. the scalar duplicate cleanup.
struct RsLaneTally {
  std::int64_t chunks = 0;
  std::int64_t lanes_total = 0;
  std::int64_t lanes_vector = 0;
  std::int64_t lanes_scalar = 0;

  void flush(const char* method) {
    auto& reg = telemetry::Registry::global();
    if (!reg.enabled() || chunks == 0) return;
    const std::string prefix = std::string("simd.rs.") + method;
    reg.add(reg.counter(prefix + ".chunks"), static_cast<double>(chunks));
    reg.add(reg.counter(prefix + ".lanes_total"),
            static_cast<double>(lanes_total));
    reg.add(reg.counter(prefix + ".lanes_vector"),
            static_cast<double>(lanes_vector));
    reg.add(reg.counter(prefix + ".lanes_scalar"),
            static_cast<double>(lanes_scalar));
  }
};

}  // namespace

void reduce_scatter_conflict_avx512(float* table, const std::int32_t* idx,
                                    const float* vals, std::int64_t n,
                                    bool iterative) {
  const bool slow = emulate_slow_scatter();
  OpTally tally;
  RsLaneTally lanes;
  for (std::int64_t i = 0; i < n; i += kLanes) {
    const __mmask16 tail = tail_mask16(n - i);
    const __m512i vidx = _mm512_maskz_loadu_epi32(tail, idx + i);
    const __m512 vval = _mm512_maskz_loadu_ps(tail, vals + i);

    // conflict_epi32: bit j of lane l is set iff idx[l] == idx[j], j < l.
    // Inactive tail lanes sit above every active lane, so their zeroed
    // values never pollute an active lane's conflict bits.
    const __m512i conf = _mm512_conflict_epi32(vidx);
    const __mmask16 first =
        _mm512_mask_cmpeq_epi32_mask(tail, conf, _mm512_setzero_si512());

    // First write-safe set: all first occurrences, handled vectorially.
    vector_accumulate(table, first, vidx, vval, slow);

    ++lanes.chunks;
    lanes.lanes_total += kLanes;

    __mmask16 pending = tail & static_cast<__mmask16>(~first);
    if (pending == 0) {
      tally.add(4, __builtin_popcount(first), __builtin_popcount(first), 0);
      lanes.lanes_vector += __builtin_popcount(first);
      continue;
    }

    if (!iterative) {
      // Production variant: the duplicates (usually few) finish scalar.
      tally.add(4, __builtin_popcount(first), __builtin_popcount(first),
                __builtin_popcount(pending));
      lanes.lanes_vector += __builtin_popcount(first);
      lanes.lanes_scalar += __builtin_popcount(pending);
      unsigned bits = pending;
      while (bits != 0u) {
        const int lane = __builtin_ctz(bits);
        table[idx[i + lane]] += vals[i + lane];
        bits &= bits - 1;
      }
      continue;
    }

    // Iterative variant: keep peeling write-safe sets. A lane becomes
    // safe once every earlier lane holding the same index is done.
    alignas(64) std::int32_t confbits[kLanes];
    _mm512_store_si512(reinterpret_cast<__m512i*>(confbits), conf);
    __mmask16 done = first;
    int rounds = 1;
    while (pending != 0) {
      __mmask16 next = 0;
      unsigned bits = pending;
      while (bits != 0u) {
        const int lane = __builtin_ctz(bits);
        if ((static_cast<unsigned>(confbits[lane]) & static_cast<unsigned>(~done)) == 0u) {
          next |= static_cast<__mmask16>(1u << lane);
        }
        bits &= bits - 1;
      }
      vector_accumulate(table, next, vidx, vval, slow);
      done |= next;
      pending &= static_cast<__mmask16>(~next);
      ++rounds;
    }
    tally.add(4 * rounds, __builtin_popcount(done), __builtin_popcount(done),
              0);
    lanes.lanes_vector += __builtin_popcount(done);
  }
  tally.flush();
  lanes.flush("conflict");
}

void reduce_scatter_compress_avx512(float* table, const std::int32_t* idx,
                                    const float* vals, std::int64_t n,
                                    bool iterative) {
  OpTally tally;
  RsLaneTally lanes;
  for (std::int64_t i = 0; i < n; i += kLanes) {
    const __mmask16 tail = tail_mask16(n - i);
    const __m512i vidx = _mm512_maskz_loadu_epi32(tail, idx + i);
    const __m512 vval = _mm512_maskz_loadu_ps(tail, vals + i);

    ++lanes.chunks;
    lanes.lanes_total += kLanes;

    if (!iterative) {
      // Production variant: reduce the first lane's index vectorially,
      // finish the other communities scalar.
      const std::int32_t c0 = idx[i];
      const __mmask16 match = _mm512_mask_cmpeq_epi32_mask(
          tail, vidx, _mm512_set1_epi32(c0));
      table[c0] += _mm512_mask_reduce_add_ps(match, vval);

      const __mmask16 rest = tail & static_cast<__mmask16>(~match);
      tally.add(3, 0, 0, __builtin_popcount(rest) + 1);
      lanes.lanes_vector += __builtin_popcount(match);
      lanes.lanes_scalar += __builtin_popcount(rest);
      unsigned bits = rest;
      while (bits != 0u) {
        const int lane = __builtin_ctz(bits);
        table[idx[i + lane]] += vals[i + lane];
        bits &= bits - 1;
      }
      continue;
    }

    // Iterative variant: one masked reduction per distinct index.
    __mmask16 pending = tail;
    int rounds = 0;
    while (pending != 0) {
      const int lane = __builtin_ctz(pending);
      const std::int32_t c = idx[i + lane];
      const __mmask16 match = _mm512_mask_cmpeq_epi32_mask(
          pending, vidx, _mm512_set1_epi32(c));
      table[c] += _mm512_mask_reduce_add_ps(match, vval);
      lanes.lanes_vector += __builtin_popcount(match);
      pending &= static_cast<__mmask16>(~match);
      ++rounds;
    }
    tally.add(3 * rounds, 0, 0, rounds);
  }
  tally.flush();
  lanes.flush("compress");
}

}  // namespace vgp::simd
