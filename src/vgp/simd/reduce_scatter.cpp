#include "vgp/simd/reduce_scatter.hpp"

#include "vgp/simd/registry.hpp"
#include "vgp/telemetry/trace.hpp"

namespace vgp::simd {

const char* rs_method_name(RsMethod m) {
  switch (m) {
    case RsMethod::Scalar: return "scalar";
    case RsMethod::Conflict: return "conflict";
    case RsMethod::ConflictIterative: return "conflict-iter";
    case RsMethod::Compress: return "compress";
    case RsMethod::CompressIterative: return "compress-iter";
  }
  return "?";
}

void reduce_scatter_scalar(float* table, const std::int32_t* idx,
                           const float* vals, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    table[idx[i]] += vals[i];
  }
}

void reduce_scatter(float* table, const std::int32_t* idx, const float* vals,
                    std::int64_t n, RsMethod method, Backend backend) {
  telemetry::TraceSpan span("simd.reduce_scatter");
  span.arg("n", n);
  span.arg_str("method", rs_method_name(method));
  if (method == RsMethod::Scalar) {
    span.arg_str("backend", "scalar");
    reduce_scatter_scalar(table, idx, vals, n);
    return;
  }
  const bool iterative = method == RsMethod::ConflictIterative ||
                         method == RsMethod::CompressIterative;
  if (method == RsMethod::Conflict || method == RsMethod::ConflictIterative) {
    const auto sel = select<RsConflictKernel>(backend);
    span.arg_str("backend", backend_name(sel.backend));
    sel.fn(table, idx, vals, n, iterative);
  } else {
    const auto sel = select<RsCompressKernel>(backend);
    span.arg_str("backend", backend_name(sel.backend));
    sel.fn(table, idx, vals, n, iterative);
  }
}

}  // namespace vgp::simd
