#include "vgp/simd/reduce_scatter.hpp"

namespace vgp::simd {

const char* rs_method_name(RsMethod m) {
  switch (m) {
    case RsMethod::Scalar: return "scalar";
    case RsMethod::Conflict: return "conflict";
    case RsMethod::ConflictIterative: return "conflict-iter";
    case RsMethod::Compress: return "compress";
    case RsMethod::CompressIterative: return "compress-iter";
  }
  return "?";
}

void reduce_scatter_scalar(float* table, const std::int32_t* idx,
                           const float* vals, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    table[idx[i]] += vals[i];
  }
}

void reduce_scatter(float* table, const std::int32_t* idx, const float* vals,
                    std::int64_t n, RsMethod method, Backend backend) {
  if (resolve(backend) == Backend::Scalar || method == RsMethod::Scalar) {
    reduce_scatter_scalar(table, idx, vals, n);
    return;
  }
#if defined(VGP_HAVE_AVX512)
  switch (method) {
    case RsMethod::Conflict:
      reduce_scatter_conflict_avx512(table, idx, vals, n, /*iterative=*/false);
      return;
    case RsMethod::ConflictIterative:
      reduce_scatter_conflict_avx512(table, idx, vals, n, /*iterative=*/true);
      return;
    case RsMethod::Compress:
      reduce_scatter_compress_avx512(table, idx, vals, n, /*iterative=*/false);
      return;
    case RsMethod::CompressIterative:
      reduce_scatter_compress_avx512(table, idx, vals, n, /*iterative=*/true);
      return;
    case RsMethod::Scalar: break;  // handled above
  }
#endif
  reduce_scatter_scalar(table, idx, vals, n);
}

}  // namespace vgp::simd
