#include "vgp/simd/reduce_scatter.hpp"

#include "vgp/simd/registry.hpp"

namespace vgp::simd {

const char* rs_method_name(RsMethod m) {
  switch (m) {
    case RsMethod::Scalar: return "scalar";
    case RsMethod::Conflict: return "conflict";
    case RsMethod::ConflictIterative: return "conflict-iter";
    case RsMethod::Compress: return "compress";
    case RsMethod::CompressIterative: return "compress-iter";
  }
  return "?";
}

void reduce_scatter_scalar(float* table, const std::int32_t* idx,
                           const float* vals, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    table[idx[i]] += vals[i];
  }
}

void reduce_scatter(float* table, const std::int32_t* idx, const float* vals,
                    std::int64_t n, RsMethod method, Backend backend) {
  if (method == RsMethod::Scalar) {
    reduce_scatter_scalar(table, idx, vals, n);
    return;
  }
  const bool iterative = method == RsMethod::ConflictIterative ||
                         method == RsMethod::CompressIterative;
  if (method == RsMethod::Conflict || method == RsMethod::ConflictIterative) {
    select<RsConflictKernel>(backend).fn(table, idx, vals, n, iterative);
  } else {
    select<RsCompressKernel>(backend).fn(table, idx, vals, n, iterative);
  }
}

}  // namespace vgp::simd
