// AVX2-tier registration. Compiled (and linked) only when VGP_ENABLE_AVX2
// put the 8-lane translation units in the build; referencing the kernel
// symbols here is what pulls those TUs out of the static library.
//
// The AVX2 tier covers the paper's *hot* kernels — reduce-scatter, the
// ONPL move phase, and label propagation. Families without an 8-lane
// variant (OVPL needs real scatters; coloring/BFS/PageRank/triangles are
// contrast kernels) fall through to their scalar slot with a recorded
// "no-avx2-variant" reason.
#include "vgp/community/label_prop.hpp"
#include "vgp/community/move_ctx.hpp"
#include "vgp/serve/batch.hpp"
#include "vgp/simd/checksum.hpp"
#include "vgp/simd/reduce_scatter.hpp"
#include "vgp/simd/registry.hpp"

namespace vgp::simd::detail {

void register_avx2_kernels() {
  const Backend tier = Backend::Avx2;

  constexpr auto rs_conflict = +[](float* table, const std::int32_t* idx,
                                   const float* vals, std::int64_t n,
                                   bool iterative) {
    reduce_scatter_conflict_avx2(table, idx, vals, n, iterative);
  };
  constexpr auto rs_compress = +[](float* table, const std::int32_t* idx,
                                   const float* vals, std::int64_t n,
                                   bool iterative) {
    reduce_scatter_compress_avx2(table, idx, vals, n, iterative);
  };
  KernelTable<RsConflictKernel>::instance().set(tier, rs_conflict);
  KernelTable<RsCompressKernel>::instance().set(tier, rs_compress);

  KernelTable<community::OnplMoveKernel>::instance().set(
      tier, &community::move_phase_onpl_avx2);
  KernelTable<community::detail::LpProcessKernel>::instance().set(
      tier, &community::detail::lp_process_avx2);
  KernelTable<ChecksumKernel>::instance().set(tier, &crc32c_hw);

  // The attribute gather has a real 8-lane variant; the degree path
  // stays scalar at this tier (4-lane 64-bit gathers don't pay off).
  serve::detail::GatherKernel::Fns gather_fns;
  gather_fns.i32 = &serve::detail::gather_i32_avx2;
  gather_fns.degree = &serve::detail::gather_degree_scalar;
  KernelTable<serve::detail::GatherKernel>::instance().set(tier, gather_fns);
}

}  // namespace vgp::simd::detail
