// Centralized kernel-dispatch registry.
//
// Every kernel family (reduce-scatter, ONPL move, OVPL block move,
// label-prop process, speculative coloring, BFS/PageRank/triangle inner
// loops) is identified by a *kernel tag*: a small struct declared next to
// the family's types that names the family and fixes the function-pointer
// signature all its variants share, e.g.
//
//   struct OnplMoveKernel {
//     static constexpr const char* name = "louvain.onpl";
//     using Fn = MoveStats (*)(const MoveCtx&);
//   };
//
// The registration units (register_scalar.cpp / register_avx2.cpp /
// register_avx512.cpp, all in this directory) install each compiled-in
// variant into KernelTable<Tag> under its backend tier. Call sites then do
//
//   const auto sel = simd::select<OnplMoveKernel>(backend);
//   auto stats = sel.fn(ctx);            // runs the chosen variant
//   stats.backend = sel.backend;         // what actually ran
//   stats.fallback_reason = sel.fallback_reason;  // nullptr if no degrade
//
// and contain no preprocessor conditionals: select() resolves the
// requested backend against build flags + CPUID (backend.hpp), then walks
// down the tier chain avx512 -> avx2 -> scalar to the widest tier the
// family actually registered. Every decision (requested backend, actual
// backend, fallback reason) is recorded through the telemetry registry as
// `dispatch.<kernel>.<backend>` /
// `dispatch.fallback[.<kernel>.<requested>.<reason>]` counters.
//
// Which TUs register which tiers is decided here in the simd layer — the
// only place allowed to test VGP_HAVE_AVX2 / VGP_HAVE_AVX512 — so a
// scalar-only build simply never installs (or links) the vector variants
// and every family degrades to its scalar slot.
#pragma once

#include <array>
#include <cstdint>

#include "vgp/simd/backend.hpp"

namespace vgp::simd {

/// Per-family verdict contributed by the execution planner (plan/): a
/// backend tier plus an optional degree threshold below which hybrid call
/// sites run their scalar per-vertex path. Backend::Auto means "the plan
/// has no opinion for this family" and leaves resolution untouched.
struct PlanChoice {
  Backend backend = Backend::Auto;
  std::int64_t degree_threshold = -1;
};

/// Backend tiers orderable by width: Scalar=0 < Avx2=1 < Avx512=2.
inline constexpr int kNumBackendTiers = 3;

constexpr int tier_index(Backend b) {
  switch (b) {
    case Backend::Avx512: return 2;
    case Backend::Avx2: return 1;
    default: return 0;  // Scalar (Auto never reaches a table lookup)
  }
}

constexpr Backend tier_backend(int tier) {
  return tier == 2 ? Backend::Avx512
                   : (tier == 1 ? Backend::Avx2 : Backend::Scalar);
}

namespace detail {

/// Installs every compiled-in variant exactly once per process (thread
/// safe; first select() pays it). Defined in registry.cpp, which is the
/// root of the link-dependency chain that keeps the self-registering
/// kernel TUs from being dead-stripped out of the static library.
void ensure_kernels_registered();

/// Telemetry hook: counts the dispatch under `dispatch.<kernel>.<actual>`
/// and, when `reason` is non-null, bumps `dispatch.fallback` and
/// `dispatch.fallback.<kernel>.<requested>.<reason>`. The *requested* tier
/// is part of the fallback counter name so a planner- or caller-forced
/// downgrade (requested=avx512) is distinguishable from an Auto dispatch
/// that merely lacked a family variant (requested=auto). Planned
/// dispatches additionally bump `dispatch.planned.<kernel>.<actual>`.
/// No-op while telemetry is off.
void record_dispatch(const char* kernel, Backend requested, Backend actual,
                     const char* reason, bool planned);

/// Planner hook: select() consults this for Auto requests (when no
/// VGP_BACKEND override is active) to steer the family toward the tier the
/// active ExecutionPlan measured as fastest. nullptr clears. The provider
/// must be safe to call from any thread and must not call select().
using PlanProviderFn = PlanChoice (*)(const char* kernel);
void set_plan_provider(PlanProviderFn fn);
PlanChoice plan_choice(const char* kernel);

/// Why resolve() degraded an explicit request for `requested` (static
/// string, e.g. "avx512-not-supported-by-cpu").
const char* resolve_gap_reason(Backend requested);

/// Why the table walk skipped the resolved tier (static string,
/// "no-avx512-variant" / "no-avx2-variant").
const char* family_gap_reason(Backend resolved);

// Per-tier registration entry points, defined in register_<tier>.cpp.
// The avx2/avx512 units exist only when the matching VGP_ENABLE_* option
// compiled them in; ensure_kernels_registered() calls them conditionally.
void register_scalar_kernels();
void register_avx2_kernels();
void register_avx512_kernels();

}  // namespace detail

/// One dispatch table per kernel family. Fn may be a plain function
/// pointer or a struct of pointers (e.g. the coloring family's
/// assign+detect pair), so presence is tracked explicitly instead of by
/// null-comparing slots.
template <typename Kernel>
class KernelTable {
 public:
  static KernelTable& instance() {
    static KernelTable table;
    return table;
  }

  void set(Backend b, typename Kernel::Fn fn) {
    slots_[tier_index(b)] = fn;
    present_[tier_index(b)] = true;
  }

  bool has(Backend b) const { return present_[tier_index(b)]; }
  typename Kernel::Fn get(Backend b) const { return slots_[tier_index(b)]; }

 private:
  std::array<typename Kernel::Fn, kNumBackendTiers> slots_{};
  std::array<bool, kNumBackendTiers> present_{};
};

/// The outcome of one dispatch decision.
template <typename Kernel>
struct Selected {
  typename Kernel::Fn fn;
  Backend requested = Backend::Auto;  // caller's request, verbatim
  Backend backend = Backend::Scalar;  // tier that actually runs
  /// nullptr when the resolved tier ran as requested; otherwise a static
  /// string naming the FIRST degradation step (hardware/build gap before
  /// family gap). Safe to store indefinitely.
  const char* fallback_reason = nullptr;
  /// Hybrid degree threshold the active plan chose for this family
  /// (vertices/batches below it run the scalar path), or -1 when no plan
  /// is active or the plan has no opinion. Call sites that support hybrid
  /// execution read this; others ignore it.
  std::int64_t degree_threshold = -1;
  /// True when the active ExecutionPlan steered this dispatch (only
  /// possible for Auto requests with no VGP_BACKEND override).
  bool planned = false;
};

/// Picks the variant of `Kernel` that runs for `requested`: resolve the
/// backend against build flags + CPUID + VGP_BACKEND, then walk down the
/// avx512 -> avx2 -> scalar chain to the widest tier this family
/// registered. Every family registers a scalar variant, so the walk always
/// lands. An Auto request with no env override additionally consults the
/// active execution plan (set_plan_provider): the plan's per-family tier
/// is treated as the effective request, so a stale plan naming an
/// unavailable tier degrades through the normal chain and records a
/// fallback against the *planned* tier. Records the decision in telemetry.
template <typename Kernel>
Selected<Kernel> select(Backend requested) {
  detail::ensure_kernels_registered();
  const auto& table = KernelTable<Kernel>::instance();

  // Precedence: explicit caller request > VGP_BACKEND > plan > CPUID.
  Backend effective = requested;
  PlanChoice plan;
  if (requested == Backend::Auto &&
      env_backend_override() == Backend::Auto) {
    plan = detail::plan_choice(Kernel::name);
    if (plan.backend != Backend::Auto) effective = plan.backend;
  }

  const Backend resolved = resolve(effective);
  int tier = tier_index(resolved);
  while (tier > 0 && !table.has(tier_backend(tier))) --tier;

  Selected<Kernel> sel;
  sel.fn = table.get(tier_backend(tier));
  sel.requested = requested;
  sel.backend = tier_backend(tier);
  sel.degree_threshold = plan.degree_threshold;
  sel.planned = plan.backend != Backend::Auto;
  if (effective != Backend::Auto && resolved != effective) {
    sel.fallback_reason = detail::resolve_gap_reason(effective);
  } else if (sel.backend != resolved) {
    sel.fallback_reason = detail::family_gap_reason(resolved);
  }
  detail::record_dispatch(Kernel::name, effective, sel.backend,
                          sel.fallback_reason, sel.planned);
  return sel;
}

}  // namespace vgp::simd
