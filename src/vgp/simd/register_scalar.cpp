// Scalar-tier registration: installs the baseline variant of every kernel
// family into the dispatch registry. This unit is always in the build —
// the scalar slot is what the select() tier walk ultimately lands on — so
// it is also where the full list of kernel families is easiest to read.
#include "vgp/classic/bfs.hpp"
#include "vgp/classic/pagerank.hpp"
#include "vgp/coloring/greedy.hpp"
#include "vgp/community/coarsen.hpp"
#include "vgp/community/label_prop.hpp"
#include "vgp/community/move_ctx.hpp"
#include "vgp/community/ovpl.hpp"
#include "vgp/graph/triangles.hpp"
#include "vgp/serve/batch.hpp"
#include "vgp/simd/checksum.hpp"
#include "vgp/simd/reduce_scatter.hpp"
#include "vgp/simd/registry.hpp"

namespace vgp::simd::detail {

void register_scalar_kernels() {
  const Backend tier = Backend::Scalar;

  // The scalar reduce-scatter loop has no peeling, so the iterative flag
  // is meaningless and dropped.
  constexpr auto rs_scalar = +[](float* table, const std::int32_t* idx,
                                 const float* vals, std::int64_t n,
                                 bool /*iterative*/) {
    reduce_scatter_scalar(table, idx, vals, n);
  };
  KernelTable<RsConflictKernel>::instance().set(tier, rs_scalar);
  KernelTable<RsCompressKernel>::instance().set(tier, rs_scalar);

  // ONPL without vector lanes degenerates to the scalar MPLM sweep; the
  // registry makes that substitution explicit (Selected::fallback_reason)
  // instead of a silent branch in run_move_phase.
  KernelTable<community::OnplMoveKernel>::instance().set(
      tier, &community::move_phase_mplm);
  KernelTable<community::OvplMoveKernel>::instance().set(
      tier, &community::move_phase_ovpl_scalar);
  KernelTable<community::detail::LpProcessKernel>::instance().set(
      tier, &community::detail::lp_process_scalar);
  KernelTable<community::detail::CoarsenEmitKernel>::instance().set(
      tier, &community::detail::coarsen_emit_scalar);

  coloring::detail::ColoringKernel::Fns coloring_fns;
  coloring_fns.assign = &coloring::detail::assign_range_scalar;
  coloring_fns.detect = &coloring::detail::detect_range_scalar;
  KernelTable<coloring::detail::ColoringKernel>::instance().set(tier,
                                                               coloring_fns);

  KernelTable<classic::detail::BfsExpandKernel>::instance().set(
      tier, &classic::detail::bfs_expand_scalar);
  KernelTable<classic::detail::PrPullKernel>::instance().set(
      tier, &classic::detail::pr_pull_scalar);
  KernelTable<TriangleIntersectKernel>::instance().set(
      tier, &intersect_count_scalar);
  KernelTable<ChecksumKernel>::instance().set(tier, &crc32c_scalar);

  serve::detail::GatherKernel::Fns gather_fns;
  gather_fns.i32 = &serve::detail::gather_i32_scalar;
  gather_fns.degree = &serve::detail::gather_degree_scalar;
  KernelTable<serve::detail::GatherKernel>::instance().set(tier, gather_fns);
}

}  // namespace vgp::simd::detail
