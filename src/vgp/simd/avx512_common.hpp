// Shared helpers for the AVX-512 translation units. Include ONLY from
// sources compiled with -mavx512f -mavx512cd (everything here uses 512-bit
// types unconditionally).
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "vgp/simd/backend.hpp"
#include "vgp/simd/op_tally.hpp"

namespace vgp::simd {

inline constexpr int kLanes = 16;

/// Mask covering min(remaining, 16) low lanes.
inline __mmask16 tail_mask16(std::int64_t remaining) {
  return remaining >= 16 ? static_cast<__mmask16>(0xFFFFu)
                         : static_cast<__mmask16>((1u << remaining) - 1u);
}

/// Masked float scatter with optional slow-scatter emulation (models a
/// microarchitecture whose scatter decomposes into sequential stores; see
/// DESIGN.md Substitutions). Lanes must hold distinct indices under `m`.
inline void scatter_ps(float* base, __mmask16 m, __m512i vidx, __m512 v,
                       bool slow) {
  if (!slow) {
    _mm512_mask_i32scatter_ps(base, m, vidx, v, 4);
    return;
  }
  alignas(64) std::int32_t idx[kLanes];
  alignas(64) float val[kLanes];
  _mm512_store_si512(reinterpret_cast<__m512i*>(idx), vidx);
  _mm512_store_ps(val, v);
  unsigned bits = m;
  while (bits != 0u) {
    const int lane = __builtin_ctz(bits);
    base[idx[lane]] = val[lane];
    bits &= bits - 1;
  }
}

/// Masked int32 scatter with the same emulation hook.
inline void scatter_epi32(std::int32_t* base, __mmask16 m, __m512i vidx,
                          __m512i v, bool slow) {
  if (!slow) {
    _mm512_mask_i32scatter_epi32(base, m, vidx, v, 4);
    return;
  }
  alignas(64) std::int32_t idx[kLanes];
  alignas(64) std::int32_t val[kLanes];
  _mm512_store_si512(reinterpret_cast<__m512i*>(idx), vidx);
  _mm512_store_si512(reinterpret_cast<__m512i*>(val), v);
  unsigned bits = m;
  while (bits != 0u) {
    const int lane = __builtin_ctz(bits);
    base[idx[lane]] = val[lane];
    bits &= bits - 1;
  }
}

}  // namespace vgp::simd
