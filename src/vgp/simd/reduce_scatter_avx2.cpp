// AVX2 (8-lane) reduce-scatter kernels — the mid-width tier of the
// constructions described in reduce_scatter.hpp. Compiled with -mavx2.
//
// Differences from the 16-lane versions: conflict detection is emulated
// with the 7-step permute-compare construction (conflict_epi32_avx2), the
// masked reduction is a two-level horizontal add, and every scatter is a
// sequential store loop (AVX2 has none). Lane accounting flushes into the
// same simd.rs.<method>.* counters; the dispatch.* counters carry the
// backend split.
#include <string>

#include "vgp/simd/avx2_common.hpp"
#include "vgp/simd/reduce_scatter.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::simd {
namespace {

/// One masked gather+add+sequential-store over lanes in `bits` (indices
/// distinct).
inline void vector_accumulate8(float* table, unsigned bits, __m256i vidx,
                               __m256 vval) {
  const __m256i m = mask_from_bits8(bits);
  const __m256 cur = _mm256_mask_i32gather_ps(
      _mm256_setzero_ps(), table, vidx, _mm256_castsi256_ps(m), 4);
  const __m256 sum = _mm256_add_ps(cur, vval);
  scatter_ps_avx2(table, bits, vidx, sum);
}

/// Same per-call lane accounting as the 16-lane kernels (see
/// reduce_scatter_avx512.cpp).
struct RsLaneTally {
  std::int64_t chunks = 0;
  std::int64_t lanes_total = 0;
  std::int64_t lanes_vector = 0;
  std::int64_t lanes_scalar = 0;

  void flush(const char* method) {
    auto& reg = telemetry::Registry::global();
    if (!reg.enabled() || chunks == 0) return;
    const std::string prefix = std::string("simd.rs.") + method;
    reg.add(reg.counter(prefix + ".chunks"), static_cast<double>(chunks));
    reg.add(reg.counter(prefix + ".lanes_total"),
            static_cast<double>(lanes_total));
    reg.add(reg.counter(prefix + ".lanes_vector"),
            static_cast<double>(lanes_vector));
    reg.add(reg.counter(prefix + ".lanes_scalar"),
            static_cast<double>(lanes_scalar));
  }
};

}  // namespace

void reduce_scatter_conflict_avx2(float* table, const std::int32_t* idx,
                                  const float* vals, std::int64_t n,
                                  bool iterative) {
  OpTally tally;
  RsLaneTally lanes;
  for (std::int64_t i = 0; i < n; i += kLanes8) {
    const unsigned tail = tail_bits8(n - i);
    const __m256i tailm = mask_from_bits8(tail);
    const __m256i vidx = maskload_epi32_avx2(idx + i, tailm);
    const __m256 vval = maskload_ps_avx2(vals + i, tailm);

    // Inactive tail lanes load as index 0 and could alias an active lane
    // holding 0 — harmless: they sit ABOVE every active lane, so they can
    // only acquire conflict bits themselves, and tail-masking drops them.
    const __m256i conf = conflict_epi32_avx2(vidx);
    const unsigned first = conflict_free_bits8(conf, tail);

    vector_accumulate8(table, first, vidx, vval);

    ++lanes.chunks;
    lanes.lanes_total += kLanes8;

    unsigned pending = tail & ~first;
    if (pending == 0u) {
      tally.add(4, __builtin_popcount(first), __builtin_popcount(first), 0);
      lanes.lanes_vector += __builtin_popcount(first);
      continue;
    }

    if (!iterative) {
      // Production variant: the duplicates (usually few) finish scalar.
      tally.add(4, __builtin_popcount(first), __builtin_popcount(first),
                __builtin_popcount(pending));
      lanes.lanes_vector += __builtin_popcount(first);
      lanes.lanes_scalar += __builtin_popcount(pending);
      unsigned bits = pending;
      while (bits != 0u) {
        const int lane = __builtin_ctz(bits);
        table[idx[i + lane]] += vals[i + lane];
        bits &= bits - 1;
      }
      continue;
    }

    // Iterative variant: keep peeling write-safe sets. A lane becomes
    // safe once every earlier lane holding the same index is done.
    alignas(32) std::int32_t confbits[kLanes8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(confbits), conf);
    unsigned done = first;
    int rounds = 1;
    while (pending != 0u) {
      unsigned next = 0;
      unsigned bits = pending;
      while (bits != 0u) {
        const int lane = __builtin_ctz(bits);
        if ((static_cast<unsigned>(confbits[lane]) & ~done) == 0u) {
          next |= 1u << lane;
        }
        bits &= bits - 1;
      }
      vector_accumulate8(table, next, vidx, vval);
      done |= next;
      pending &= ~next;
      ++rounds;
    }
    tally.add(4 * rounds, __builtin_popcount(done), __builtin_popcount(done),
              0);
    lanes.lanes_vector += __builtin_popcount(done);
  }
  tally.flush();
  lanes.flush("conflict");
}

void reduce_scatter_compress_avx2(float* table, const std::int32_t* idx,
                                  const float* vals, std::int64_t n,
                                  bool iterative) {
  OpTally tally;
  RsLaneTally lanes;
  for (std::int64_t i = 0; i < n; i += kLanes8) {
    const unsigned tail = tail_bits8(n - i);
    const __m256i tailm = mask_from_bits8(tail);
    const __m256i vidx = maskload_epi32_avx2(idx + i, tailm);
    const __m256 vval = maskload_ps_avx2(vals + i, tailm);

    ++lanes.chunks;
    lanes.lanes_total += kLanes8;

    if (!iterative) {
      // Production variant: reduce the first lane's index vectorially,
      // finish the other communities scalar.
      const std::int32_t c0 = idx[i];
      const unsigned match =
          tail & bits_from_mask8(
                     _mm256_cmpeq_epi32(vidx, _mm256_set1_epi32(c0)));
      table[c0] += reduce_add_masked_ps8(vval, mask_from_bits8(match));

      const unsigned rest = tail & ~match;
      tally.add(3, 0, 0, __builtin_popcount(rest) + 1);
      lanes.lanes_vector += __builtin_popcount(match);
      lanes.lanes_scalar += __builtin_popcount(rest);
      unsigned bits = rest;
      while (bits != 0u) {
        const int lane = __builtin_ctz(bits);
        table[idx[i + lane]] += vals[i + lane];
        bits &= bits - 1;
      }
      continue;
    }

    // Iterative variant: one masked reduction per distinct index.
    unsigned pending = tail;
    int rounds = 0;
    while (pending != 0u) {
      const int lane = __builtin_ctz(pending);
      const std::int32_t c = idx[i + lane];
      const unsigned match =
          pending & bits_from_mask8(
                        _mm256_cmpeq_epi32(vidx, _mm256_set1_epi32(c)));
      table[c] += reduce_add_masked_ps8(vval, mask_from_bits8(match));
      lanes.lanes_vector += __builtin_popcount(match);
      pending &= ~match;
      ++rounds;
    }
    tally.add(3 * rounds, 0, 0, rounds);
  }
  tally.flush();
  lanes.flush("compress");
}

}  // namespace vgp::simd
