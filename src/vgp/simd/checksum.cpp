#include "vgp/simd/checksum.hpp"

#include <array>

#include "vgp/fault/failpoint.hpp"
#include "vgp/simd/registry.hpp"

namespace vgp::simd {
namespace {

// Reflected CRC32C polynomial (Castagnoli).
constexpr std::uint32_t kPoly = 0x82f63b78u;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

// GF(2) matrix-vector product over 32-bit column vectors; `mat` is 32
// columns. Same construction as zlib's crc32_combine, with the
// Castagnoli polynomial.
std::uint32_t gf2_matrix_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

}  // namespace

std::uint32_t crc32c_scalar(const void* data, std::size_t len,
                            std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

std::uint32_t crc32c_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b) {
  if (len_b == 0) return crc_a;

  // odd = the operator advancing a CRC by one zero bit; square it up to
  // get one-byte, two-byte, ... operators and apply the ones selected
  // by the binary expansion of len_b (zlib's crc32_combine scheme).
  std::uint32_t odd[32];
  std::uint32_t even[32];
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two-bit operator
  gf2_matrix_square(odd, even);  // four-bit operator

  std::uint32_t crc = crc_a;
  std::uint64_t len = len_b;
  do {
    gf2_matrix_square(even, odd);  // even = odd^2: next power-of-two shift
    if (len & 1u) crc = gf2_matrix_times(even, crc);
    len >>= 1;
    if (len == 0) break;
    gf2_matrix_square(odd, even);
    if (len & 1u) crc = gf2_matrix_times(odd, crc);
    len >>= 1;
  } while (len != 0);

  return crc ^ crc_b;
}

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc,
                     Backend backend) {
  VGP_FAILPOINT("checksum.compute");
  const auto sel = select<ChecksumKernel>(backend);
  return sel.fn(data, len, crc);
}

}  // namespace vgp::simd
