// Single-stream hardware CRC32C (SSE4.2 _mm_crc32_u64). Lives in the
// AVX2 source list so it inherits the -mavx2 codegen flags (which imply
// SSE4.2) and is only linked when the AVX2 tier is compiled in; every
// CPU that passes the AVX2 runtime gate has SSE4.2.
#include <nmmintrin.h>

#include <cstring>

#include "vgp/simd/checksum.hpp"

namespace vgp::simd {

std::uint32_t crc32c_hw(const void* data, std::size_t len, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = ~crc;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    c = _mm_crc32_u8(static_cast<std::uint32_t>(c), *p);
    ++p;
    --len;
  }
  return ~static_cast<std::uint32_t>(c);
}

}  // namespace vgp::simd
