// Reduce-scatter: table[idx[i]] += vals[i] with duplicate indices reduced
// correctly — the pattern at the heart of the paper's ONPL kernels. A blind
// vector scatter would drop all but one update when a community id appears
// in several lanes, so the duplicates must be combined first. No single
// AVX-512 instruction does this; the paper gives two constructions:
//
//   * Conflict detection (AVX-512CD): `_mm512_conflict_epi32` flags, per
//     lane, which lower lanes hold the same index. Lanes with no earlier
//     duplicate form a write-safe set, updated with one masked
//     gather+add+scatter; the paper's production variant then finishes the
//     (few) remaining lanes with scalar code, and an iterative variant
//     keeps peeling write-safe sets entirely with vector ops.
//
//   * In-vector reduction ("compress"): broadcast the first lane's index,
//     compare to find its duplicates, `_mm512_mask_reduce_add_ps` their
//     values into one scalar update. Best once most lanes share one
//     community (late in community-detection convergence). Again the
//     production variant processes only the first index vectorially.
//
// All variants produce the same table contents as the scalar loop, up to
// floating-point reassociation.
#pragma once

#include <cstdint>

#include "vgp/simd/backend.hpp"

namespace vgp::simd {

enum class RsMethod {
  Scalar,             // plain scalar loop (the baseline)
  Conflict,           // CD mask, one vector pass + scalar remainder
  ConflictIterative,  // CD mask, repeated vector passes (ablation)
  Compress,           // first index vector-reduced + scalar remainder
  CompressIterative,  // repeated in-vector reductions (ablation)
};

const char* rs_method_name(RsMethod m);

/// table[idx[i]] += vals[i] for i in [0, n). Requires 0 <= idx[i] <
/// table_size; duplicate indices accumulate. Dispatches on `backend`
/// (Scalar backend forces the scalar loop regardless of method).
void reduce_scatter(float* table, const std::int32_t* idx, const float* vals,
                    std::int64_t n, RsMethod method,
                    Backend backend = Backend::Auto);

/// The scalar reference loop, exposed for tests and ablation.
void reduce_scatter_scalar(float* table, const std::int32_t* idx,
                           const float* vals, std::int64_t n);

// Raw vector kernels. Declarations are unconditional (harmless when the
// matching TU is not in the build); definitions exist only when the
// register_<tier>.cpp unit that installs them was compiled in, so go
// through the registry (simd::select) instead of naming these directly.
void reduce_scatter_conflict_avx512(float* table, const std::int32_t* idx,
                                    const float* vals, std::int64_t n,
                                    bool iterative);
void reduce_scatter_compress_avx512(float* table, const std::int32_t* idx,
                                    const float* vals, std::int64_t n,
                                    bool iterative);
void reduce_scatter_conflict_avx2(float* table, const std::int32_t* idx,
                                  const float* vals, std::int64_t n,
                                  bool iterative);
void reduce_scatter_compress_avx2(float* table, const std::int32_t* idx,
                                  const float* vals, std::int64_t n,
                                  bool iterative);

/// Registry tags for the two vectorizable reduce-scatter constructions.
/// The scalar slot ignores `iterative` (the scalar loop has no peeling).
struct RsConflictKernel {
  static constexpr const char* name = "simd.rs.conflict";
  using Fn = void (*)(float*, const std::int32_t*, const float*, std::int64_t,
                      bool);
};
struct RsCompressKernel {
  static constexpr const char* name = "simd.rs.compress";
  using Fn = void (*)(float*, const std::int32_t*, const float*, std::int64_t,
                      bool);
};

}  // namespace vgp::simd
