// Coarse instrumentation accumulators shared by every vector tier.
//
// This header is ISA-neutral (no vector types) so it can be included from
// scalar, AVX2 (-mavx2) and AVX-512 (-mavx512f -mavx512cd) translation
// units alike; the ISA-specific helpers live in avx2_common.hpp /
// avx512_common.hpp, which both include this file.
#pragma once

#include <cstdint>

#include "vgp/support/opcount.hpp"

namespace vgp::simd {

/// Coarse instrumentation accumulator. Kernels tally into a local
/// OpTally and flush once per call — a per-chunk thread_local lookup
/// costs ~15% on short kernels. The energy model (vgp/energy/model.*)
/// converts the counts to joules.
struct OpTally {
  std::uint64_t vector_ops = 0;
  std::uint64_t gather_lanes = 0;
  std::uint64_t scatter_lanes = 0;
  std::uint64_t scalar_ops = 0;

  void add(int vops, int glanes, int slanes, int sops) noexcept {
    vector_ops += static_cast<std::uint64_t>(vops);
    gather_lanes += static_cast<std::uint64_t>(glanes);
    scatter_lanes += static_cast<std::uint64_t>(slanes);
    scalar_ops += static_cast<std::uint64_t>(sops);
  }

  void flush() noexcept {
    auto& oc = opcount::local();
    oc.vector_ops += vector_ops;
    oc.gather_lanes += gather_lanes;
    oc.scatter_lanes += scatter_lanes;
    oc.scalar_ops += scalar_ops;
    *this = OpTally{};
  }
};

/// Back-compat shim for call sites that charge rarely (once per vertex or
/// less).
inline void charge_vector_chunk(int vector_ops, int gather_lanes,
                                int scatter_lanes, int scalar_ops) {
  auto& oc = opcount::local();
  oc.vector_ops += static_cast<std::uint64_t>(vector_ops);
  oc.gather_lanes += static_cast<std::uint64_t>(gather_lanes);
  oc.scatter_lanes += static_cast<std::uint64_t>(scatter_lanes);
  oc.scalar_ops += static_cast<std::uint64_t>(scalar_ops);
}

}  // namespace vgp::simd
