// Three-stream interleaved hardware CRC32C for the AVX-512 tier.
//
// _mm_crc32_u64 has a 3-cycle latency / 1-cycle throughput recurrence,
// so a single dependent stream runs at ~1/3 of the unit's capacity.
// Splitting the buffer into three chunks and round-robining the three
// independent CRC registers through one loop fills the pipeline; the
// per-chunk CRCs are then merged with the GF(2) zero-extension
// operator (crc32c_combine). The CRC unit itself is SSE4.2 — the
// AVX-512 tier is just where the extra ILP is worth the recombination
// cost, matching how this registry treats tiers as width/ILP levels.
//
// Self-contained: does not call the AVX2-tier crc32c_hw so an
// AVX512-only build (VGP_ENABLE_AVX2=OFF) still links.
#include <nmmintrin.h>

#include <cstring>

#include "vgp/simd/checksum.hpp"

namespace vgp::simd {
namespace {

inline std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t word;
  std::memcpy(&word, p, 8);
  return word;
}

std::uint32_t hw_single(const unsigned char* p, std::size_t len,
                        std::uint32_t crc) {
  std::uint64_t c = ~crc;
  while (len >= 8) {
    c = _mm_crc32_u64(c, load_u64(p));
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    c = _mm_crc32_u8(static_cast<std::uint32_t>(c), *p);
    ++p;
    --len;
  }
  return ~static_cast<std::uint32_t>(c);
}

}  // namespace

std::uint32_t crc32c_hw3(const void* data, std::size_t len,
                         std::uint32_t crc) {
  const auto* a = static_cast<const unsigned char*>(data);

  // Below ~3 cache lines per stream the recombination dominates.
  constexpr std::size_t kMinChunk = 64;
  const std::size_t chunk = (len / 3) & ~std::size_t{7};
  if (chunk < kMinChunk) return hw_single(a, len, crc);

  const unsigned char* b = a + chunk;
  const unsigned char* c = b + chunk;

  std::uint64_t sa = ~crc;  // stream A chains the incoming crc
  std::uint64_t sb = 0xffffffffu;
  std::uint64_t sc = 0xffffffffu;
  for (std::size_t i = 0; i < chunk; i += 8) {
    sa = _mm_crc32_u64(sa, load_u64(a + i));
    sb = _mm_crc32_u64(sb, load_u64(b + i));
    sc = _mm_crc32_u64(sc, load_u64(c + i));
  }

  std::uint32_t merged = crc32c_combine(~static_cast<std::uint32_t>(sa),
                                        ~static_cast<std::uint32_t>(sb),
                                        chunk);
  merged = crc32c_combine(merged, ~static_cast<std::uint32_t>(sc), chunk);

  return hw_single(c + chunk, len - 3 * chunk, merged);
}

}  // namespace vgp::simd
