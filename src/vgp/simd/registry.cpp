#include "vgp/simd/registry.hpp"

#include <mutex>
#include <string>

#include "vgp/support/cpu.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::simd::detail {

void ensure_kernels_registered() {
  // std::once keeps registration race-free when the first select() calls
  // arrive from several pool threads at once. Referencing the per-tier
  // registration functions here — from the TU every select() depends on —
  // is what drags the registration objects (and through them the kernel
  // TUs) out of the static library; pure self-registration via global
  // constructors would be dead-stripped.
  static std::once_flag once;
  std::call_once(once, [] {
    register_scalar_kernels();
#if defined(VGP_HAVE_AVX2)
    register_avx2_kernels();
#endif
#if defined(VGP_HAVE_AVX512)
    register_avx512_kernels();
#endif
  });
}

const char* resolve_gap_reason(Backend requested) {
  if (requested == Backend::Avx512) {
#if defined(VGP_HAVE_AVX512)
    if (!cpu_features().has_avx512_kernels()) {
      return "avx512-not-supported-by-cpu";
    }
#else
    return "avx512-not-compiled";
#endif
  }
  if (requested == Backend::Avx2) {
#if defined(VGP_HAVE_AVX2)
    if (!cpu_features().has_avx2_kernels()) {
      return "avx2-not-supported-by-cpu";
    }
#else
    return "avx2-not-compiled";
#endif
  }
  return "unavailable";  // unreachable with a consistent resolve()
}

const char* family_gap_reason(Backend resolved) {
  switch (resolved) {
    case Backend::Avx512: return "no-avx512-variant";
    case Backend::Avx2: return "no-avx2-variant";
    default: return "no-variant";  // unreachable: scalar slots always exist
  }
}

void record_dispatch(const char* kernel, Backend requested, Backend actual,
                     const char* reason) {
  (void)requested;
  auto& reg = telemetry::Registry::global();
  if (!reg.enabled()) return;
  reg.add(reg.counter(std::string("dispatch.") + kernel + "." +
                      backend_name(actual)),
          1.0);
  if (reason != nullptr) {
    reg.add(reg.counter("dispatch.fallback"), 1.0);
    reg.add(reg.counter(std::string("dispatch.fallback.") + kernel + "." +
                        reason),
            1.0);
  }
}

}  // namespace vgp::simd::detail
