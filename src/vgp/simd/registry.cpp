#include "vgp/simd/registry.hpp"

#include <atomic>
#include <mutex>
#include <string>

#include "vgp/support/cpu.hpp"
#include "vgp/telemetry/registry.hpp"

namespace vgp::simd::detail {

namespace {

// Installed by plan::set_active_plan(); select() reads it on every Auto
// dispatch, so it is a lock-free pointer swap rather than a mutex.
std::atomic<PlanProviderFn> g_plan_provider{nullptr};

}  // namespace

void set_plan_provider(PlanProviderFn fn) {
  g_plan_provider.store(fn, std::memory_order_release);
}

PlanChoice plan_choice(const char* kernel) {
  const PlanProviderFn fn = g_plan_provider.load(std::memory_order_acquire);
  return fn != nullptr ? fn(kernel) : PlanChoice{};
}

void ensure_kernels_registered() {
  // std::once keeps registration race-free when the first select() calls
  // arrive from several pool threads at once. Referencing the per-tier
  // registration functions here — from the TU every select() depends on —
  // is what drags the registration objects (and through them the kernel
  // TUs) out of the static library; pure self-registration via global
  // constructors would be dead-stripped.
  static std::once_flag once;
  std::call_once(once, [] {
    register_scalar_kernels();
#if defined(VGP_HAVE_AVX2)
    register_avx2_kernels();
#endif
#if defined(VGP_HAVE_AVX512)
    register_avx512_kernels();
#endif
  });
}

const char* resolve_gap_reason(Backend requested) {
  if (requested == Backend::Avx512) {
#if defined(VGP_HAVE_AVX512)
    if (!cpu_features().has_avx512_kernels()) {
      return "avx512-not-supported-by-cpu";
    }
#else
    return "avx512-not-compiled";
#endif
  }
  if (requested == Backend::Avx2) {
#if defined(VGP_HAVE_AVX2)
    if (!cpu_features().has_avx2_kernels()) {
      return "avx2-not-supported-by-cpu";
    }
#else
    return "avx2-not-compiled";
#endif
  }
  return "unavailable";  // unreachable with a consistent resolve()
}

const char* family_gap_reason(Backend resolved) {
  switch (resolved) {
    case Backend::Avx512: return "no-avx512-variant";
    case Backend::Avx2: return "no-avx2-variant";
    default: return "no-variant";  // unreachable: scalar slots always exist
  }
}

void record_dispatch(const char* kernel, Backend requested, Backend actual,
                     const char* reason, bool planned) {
  auto& reg = telemetry::Registry::global();
  if (!reg.enabled()) return;
  reg.add(reg.counter(std::string("dispatch.") + kernel + "." +
                      backend_name(actual)),
          1.0);
  if (planned) {
    reg.add(reg.counter(std::string("dispatch.planned.") + kernel + "." +
                        backend_name(actual)),
            1.0);
  }
  if (reason != nullptr) {
    reg.add(reg.counter("dispatch.fallback"), 1.0);
    // The requested tier is in the name: a planner-forced avx512 that
    // landed on scalar shows up as <kernel>.avx512.<reason>, while an
    // Auto dispatch missing a family variant shows up as
    // <kernel>.auto.<reason>.
    reg.add(reg.counter(std::string("dispatch.fallback.") + kernel + "." +
                        backend_name(requested) + "." + reason),
            1.0);
  }
}

}  // namespace vgp::simd::detail
