// CRC32C (Castagnoli) checksum kernel family.
//
// The hardened .vgpb format checksums its header and each section; this
// is the kernel behind it, registered in the SIMD dispatch registry as
// the `checksum.crc32c` family:
//
//   scalar tier   byte-at-a-time table CRC (always present)
//   avx2 tier     hardware _mm_crc32_u64, one stream (SSE4.2 — implied
//                 by the AVX2 compile tier and by every AVX2 CPU)
//   avx512 tier   three interleaved _mm_crc32_u64 streams merged with a
//                 GF(2) carryless shift, saturating the 3-cycle
//                 recurrence the single-stream version is bound by
//
// Convention: `crc` is the running checksum in its final (xor-ed out)
// form; pass 0 to start a fresh sum and chain calls freely:
// crc32c(b, n) == crc32c(b + k, n - k, crc32c(b, k)).
#pragma once

#include <cstddef>
#include <cstdint>

#include "vgp/simd/backend.hpp"

namespace vgp::simd {

struct ChecksumKernel {
  static constexpr const char* name = "checksum.crc32c";
  using Fn = std::uint32_t (*)(const void* data, std::size_t len,
                               std::uint32_t crc);
};

/// CRC32C of `len` bytes starting at `data`, chained from `crc`.
/// Dispatches through the kernel registry (telemetry-visible like every
/// other family); `backend` defaults to the process-wide resolution.
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc = 0,
                     Backend backend = Backend::Auto);

/// Scalar reference implementation (table-driven), always available.
std::uint32_t crc32c_scalar(const void* data, std::size_t len,
                            std::uint32_t crc);

/// Combines two independently-computed CRC32Cs: the checksum of the
/// concatenation A||B given crc(A), crc(B), and len(B). Used by the
/// multi-stream kernel; exposed for tests.
std::uint32_t crc32c_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b);

#if defined(VGP_HAVE_AVX2)
/// Single-stream hardware CRC (SSE4.2 _mm_crc32_u64).
std::uint32_t crc32c_hw(const void* data, std::size_t len, std::uint32_t crc);
#endif

#if defined(VGP_HAVE_AVX512)
/// Three-stream interleaved hardware CRC with GF(2) recombination.
std::uint32_t crc32c_hw3(const void* data, std::size_t len, std::uint32_t crc);
#endif

}  // namespace vgp::simd
