#include "vgp/simd/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "vgp/support/cpu.hpp"

namespace vgp::simd {
namespace {

std::atomic<bool> g_slow_scatter{false};

Backend env_override() {
  static const Backend value = [] {
    const char* env = std::getenv("VGP_BACKEND");
    if (env == nullptr) return Backend::Auto;
    return parse_backend(env);
  }();
  return value;
}

}  // namespace

bool avx512_kernels_available() {
#if defined(VGP_HAVE_AVX512)
  return cpu_features().has_avx512_kernels();
#else
  return false;
#endif
}

Backend resolve(Backend requested) {
  if (requested == Backend::Auto) {
    const Backend forced = env_override();
    if (forced != Backend::Auto) requested = forced;
  }
  if (requested == Backend::Auto) {
    return avx512_kernels_available() ? Backend::Avx512 : Backend::Scalar;
  }
  if (requested == Backend::Avx512 && !avx512_kernels_available()) {
    return Backend::Scalar;
  }
  return requested;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Scalar: return "scalar";
    case Backend::Avx512: return "avx512";
  }
  return "?";
}

Backend parse_backend(const std::string& name) {
  if (name == "auto") return Backend::Auto;
  if (name == "scalar") return Backend::Scalar;
  if (name == "avx512") return Backend::Avx512;
  throw std::invalid_argument("unknown backend: " + name);
}

void set_emulate_slow_scatter(bool on) {
  g_slow_scatter.store(on, std::memory_order_relaxed);
}

bool emulate_slow_scatter() {
  return g_slow_scatter.load(std::memory_order_relaxed);
}

}  // namespace vgp::simd
