#include "vgp/simd/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "vgp/support/cpu.hpp"
#include "vgp/support/log.hpp"

namespace vgp::simd {
namespace {

std::atomic<bool> g_slow_scatter{false};

}  // namespace

// The env override is parsed exactly once per process: the first caller
// pays the getenv + parse, every later call reads the cached value. A bad
// value must not abort whatever kernel happened to resolve first, so it
// degrades to Auto after one stderr warning.
Backend env_backend_override() {
  static const Backend value = [] {
    const char* env = std::getenv("VGP_BACKEND");
    if (env == nullptr) return Backend::Auto;
    try {
      return parse_backend(env);
    } catch (const std::invalid_argument& e) {
      log::warn("env.ignored")
          .field("var", "VGP_BACKEND")
          .field("value", env)
          .field("reason", e.what());
      return Backend::Auto;
    }
  }();
  return value;
}

bool avx512_kernels_available() {
#if defined(VGP_HAVE_AVX512)
  return cpu_features().has_avx512_kernels();
#else
  return false;
#endif
}

bool avx2_kernels_available() {
#if defined(VGP_HAVE_AVX2)
  return cpu_features().has_avx2_kernels();
#else
  return false;
#endif
}

Backend resolve(Backend requested) {
  if (requested == Backend::Auto) {
    const Backend forced = env_backend_override();
    if (forced != Backend::Auto) requested = forced;
  }
  if (requested == Backend::Auto) {
    if (avx512_kernels_available()) return Backend::Avx512;
    if (avx2_kernels_available()) return Backend::Avx2;
    return Backend::Scalar;
  }
  // Explicit requests degrade down the chain, one tier at a time.
  if (requested == Backend::Avx512 && !avx512_kernels_available()) {
    requested = Backend::Avx2;
  }
  if (requested == Backend::Avx2 && !avx2_kernels_available()) {
    requested = Backend::Scalar;
  }
  return requested;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Scalar: return "scalar";
    case Backend::Avx2: return "avx2";
    case Backend::Avx512: return "avx512";
  }
  return "?";
}

Backend parse_backend(const std::string& name) {
  if (name == "auto") return Backend::Auto;
  if (name == "scalar") return Backend::Scalar;
  if (name == "avx2") return Backend::Avx2;
  if (name == "avx512") return Backend::Avx512;
  throw std::invalid_argument("unknown backend: \"" + name +
                              "\" (expected auto, scalar, avx2, or avx512)");
}

void set_emulate_slow_scatter(bool on) {
  g_slow_scatter.store(on, std::memory_order_relaxed);
}

bool emulate_slow_scatter() {
  return g_slow_scatter.load(std::memory_order_relaxed);
}

}  // namespace vgp::simd
