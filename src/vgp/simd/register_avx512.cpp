// AVX-512-tier registration. Compiled (and linked) only when
// VGP_ENABLE_AVX512 put the 16-lane translation units in the build;
// referencing the kernel symbols here is what pulls those TUs out of the
// static library.
#include "vgp/classic/bfs.hpp"
#include "vgp/classic/pagerank.hpp"
#include "vgp/coloring/greedy.hpp"
#include "vgp/community/coarsen.hpp"
#include "vgp/community/label_prop.hpp"
#include "vgp/community/move_ctx.hpp"
#include "vgp/community/ovpl.hpp"
#include "vgp/graph/triangles.hpp"
#include "vgp/serve/batch.hpp"
#include "vgp/simd/checksum.hpp"
#include "vgp/simd/reduce_scatter.hpp"
#include "vgp/simd/registry.hpp"

namespace vgp::simd::detail {

void register_avx512_kernels() {
  const Backend tier = Backend::Avx512;

  constexpr auto rs_conflict = +[](float* table, const std::int32_t* idx,
                                   const float* vals, std::int64_t n,
                                   bool iterative) {
    reduce_scatter_conflict_avx512(table, idx, vals, n, iterative);
  };
  constexpr auto rs_compress = +[](float* table, const std::int32_t* idx,
                                   const float* vals, std::int64_t n,
                                   bool iterative) {
    reduce_scatter_compress_avx512(table, idx, vals, n, iterative);
  };
  KernelTable<RsConflictKernel>::instance().set(tier, rs_conflict);
  KernelTable<RsCompressKernel>::instance().set(tier, rs_compress);

  KernelTable<community::OnplMoveKernel>::instance().set(
      tier, &community::move_phase_onpl_avx512);
  KernelTable<community::OvplMoveKernel>::instance().set(
      tier, &community::move_phase_ovpl_avx512);
  KernelTable<community::detail::LpProcessKernel>::instance().set(
      tier, &community::detail::lp_process_avx512);
  KernelTable<community::detail::CoarsenEmitKernel>::instance().set(
      tier, &community::detail::coarsen_emit_avx512);

  coloring::detail::ColoringKernel::Fns coloring_fns;
  coloring_fns.assign = &coloring::detail::assign_range_avx512;
  coloring_fns.detect = &coloring::detail::detect_range_avx512;
  KernelTable<coloring::detail::ColoringKernel>::instance().set(tier,
                                                               coloring_fns);

  KernelTable<classic::detail::BfsExpandKernel>::instance().set(
      tier, &classic::detail::bfs_expand_avx512);
  KernelTable<classic::detail::PrPullKernel>::instance().set(
      tier, &classic::detail::pr_pull_avx512);
  KernelTable<TriangleIntersectKernel>::instance().set(
      tier, &intersect_count_avx512);
  KernelTable<ChecksumKernel>::instance().set(tier, &crc32c_hw3);

  serve::detail::GatherKernel::Fns gather_fns;
  gather_fns.i32 = &serve::detail::gather_i32_avx512;
  gather_fns.degree = &serve::detail::gather_degree_avx512;
  KernelTable<serve::detail::GatherKernel>::instance().set(tier, gather_fns);
}

}  // namespace vgp::simd::detail
