// Shared helpers for the AVX2 (8-lane) translation units. Include ONLY
// from sources compiled with -mavx2 (everything here uses 256-bit types
// unconditionally).
//
// AVX2 lacks three things the 16-lane kernels lean on, each emulated
// here:
//   * mask registers — masks are all-ones/all-zeros 32-bit lanes,
//     converted to/from 8-bit integers via movemask;
//   * scatter — stores decompose into a sequential lane loop (which is
//     also why the slow-scatter toggle is moot at this tier: the
//     emulation IS the only path);
//   * conflict detection — _mm512_conflict_epi32 is rebuilt from 7
//     rotate+compare steps (the permute-compare construction).
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "vgp/simd/backend.hpp"
#include "vgp/simd/op_tally.hpp"

namespace vgp::simd {

inline constexpr int kLanes8 = 8;

/// Bitmask (low 8 bits) covering min(remaining, 8) low lanes.
inline unsigned tail_bits8(std::int64_t remaining) {
  return remaining >= 8 ? 0xFFu : ((1u << remaining) - 1u);
}

/// Per-lane bit value: lane l holds 1 << l.
inline __m256i lane_bit8() {
  return _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
}

/// Expands an 8-bit lane mask into an all-ones/all-zeros vector mask.
inline __m256i mask_from_bits8(unsigned bits) {
  const __m256i lb = lane_bit8();
  const __m256i hit =
      _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(bits)), lb);
  return _mm256_cmpeq_epi32(hit, lb);
}

/// Collapses an all-ones/all-zeros vector mask to its 8-bit lane mask.
inline unsigned bits_from_mask8(__m256i m) {
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

/// Masked loads; inactive lanes read as 0 (like the AVX-512 maskz loads).
inline __m256i maskload_epi32_avx2(const std::int32_t* p, __m256i m) {
  return _mm256_maskload_epi32(reinterpret_cast<const int*>(p), m);
}
inline __m256 maskload_ps_avx2(const float* p, __m256i m) {
  return _mm256_maskload_ps(p, m);
}

/// Masked float scatter. AVX2 has no scatter instruction, so this is
/// always the sequential-store loop. Lanes in `bits` must hold distinct
/// indices.
inline void scatter_ps_avx2(float* base, unsigned bits, __m256i vidx,
                            __m256 v) {
  alignas(32) std::int32_t idx[kLanes8];
  alignas(32) float val[kLanes8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(idx), vidx);
  _mm256_store_ps(val, v);
  while (bits != 0u) {
    const int lane = __builtin_ctz(bits);
    base[idx[lane]] = val[lane];
    bits &= bits - 1;
  }
}

/// Masked int32 scatter (same emulation).
inline void scatter_epi32_avx2(std::int32_t* base, unsigned bits,
                               __m256i vidx, __m256i v) {
  alignas(32) std::int32_t idx[kLanes8];
  alignas(32) std::int32_t val[kLanes8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(idx), vidx);
  _mm256_store_si256(reinterpret_cast<__m256i*>(val), v);
  while (bits != 0u) {
    const int lane = __builtin_ctz(bits);
    base[idx[lane]] = val[lane];
    bits &= bits - 1;
  }
}

/// Emulates _mm512_conflict_epi32 at 8 lanes: lane l of the result holds
/// a bitmask of the earlier lanes j < l with v[j] == v[l]. Built from 7
/// rotations: step k compares every lane l against lane l-k and, on a
/// match, contributes bit (l-k) = (1 << l) >> k — the shift naturally
/// zeroes the wrapped lanes l < k, so no extra validity mask is needed.
inline __m256i conflict_epi32_avx2(__m256i v) {
  alignas(32) static const std::int32_t kRot[7][kLanes8] = {
      {7, 0, 1, 2, 3, 4, 5, 6},  // lane l reads lane (l-1) & 7
      {6, 7, 0, 1, 2, 3, 4, 5},
      {5, 6, 7, 0, 1, 2, 3, 4},
      {4, 5, 6, 7, 0, 1, 2, 3},
      {3, 4, 5, 6, 7, 0, 1, 2},
      {2, 3, 4, 5, 6, 7, 0, 1},
      {1, 2, 3, 4, 5, 6, 7, 0},
  };
  const __m256i lb = lane_bit8();
  __m256i conf = _mm256_setzero_si256();
  for (int k = 1; k <= 7; ++k) {
    const __m256i rot = _mm256_permutevar8x32_epi32(
        v, _mm256_load_si256(reinterpret_cast<const __m256i*>(kRot[k - 1])));
    const __m256i eq = _mm256_cmpeq_epi32(v, rot);
    conf = _mm256_or_si256(conf, _mm256_and_si256(eq, _mm256_srli_epi32(lb, k)));
  }
  return conf;
}

/// Lanes (within `bits`) that have NO earlier duplicate — the write-safe
/// set of a conflict-emulation round.
inline unsigned conflict_free_bits8(__m256i conf, unsigned bits) {
  return bits & bits_from_mask8(
                    _mm256_cmpeq_epi32(conf, _mm256_setzero_si256()));
}

/// Sum of the lanes selected by the vector mask `m` (replaces
/// _mm512_mask_reduce_add_ps).
inline float reduce_add_masked_ps8(__m256 v, __m256i m) {
  const __m256 z = _mm256_and_ps(v, _mm256_castsi256_ps(m));
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(z),
                        _mm256_extractf128_ps(z, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

}  // namespace vgp::simd
