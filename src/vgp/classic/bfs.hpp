// Level-synchronous breadth-first search — one of the "classic" graph
// kernels the paper contrasts against (§Introduction, §5: "while this
// strategy applies to classic problems like BFS or SpMV ...").
//
// BFS vectorizes with ONPL-style neighbor gathering but, unlike the
// community kernels, needs NO reduce-scatter: when two lanes discover the
// same unvisited neighbor they scatter the *same* distance value, so the
// write conflict is benign. This module exists to demonstrate that
// contrast (see bench/contrast_classic.cpp) and as a plain utility.
#pragma once

#include <cstdint>
#include <vector>

#include "vgp/graph/csr.hpp"
#include "vgp/simd/backend.hpp"

namespace vgp::classic {

inline constexpr std::int32_t kUnreached = -1;

struct BfsResult {
  /// distance[v] = hops from the source, kUnreached if disconnected.
  std::vector<std::int32_t> distance;
  std::int64_t reached = 0;
  std::int32_t max_distance = 0;
  int rounds = 0;
};

struct BfsOptions {
  simd::Backend backend = simd::Backend::Auto;
  std::int64_t grain = 512;
};

BfsResult bfs(const Graph& g, VertexId source, const BfsOptions& opts = {});

/// True when `distance` is a valid BFS labeling from `source` (triangle
/// inequality over every edge, source at 0, reached set connected).
bool verify_bfs(const Graph& g, VertexId source,
                const std::vector<std::int32_t>& distance,
                std::string* why = nullptr);

namespace detail {

struct BfsCtx {
  const std::uint64_t* offsets = nullptr;
  const VertexId* adj = nullptr;
  std::int32_t* distance = nullptr;
  std::int32_t level = 0;  // distance assigned to discovered vertices
};

/// Scans frontier[0..count), appends fresh discoveries to `next`.
void bfs_expand_scalar(const BfsCtx& ctx, const VertexId* frontier,
                       std::int64_t count, std::vector<VertexId>& next);

// 16-lane frontier expansion. Declared unconditionally; defined only in
// AVX-512 builds — dispatch through simd::select<BfsExpandKernel>.
void bfs_expand_avx512(const BfsCtx& ctx, const VertexId* frontier,
                       std::int64_t count, std::vector<VertexId>& next);

/// Registry tag for the BFS frontier-expansion family.
struct BfsExpandKernel {
  static constexpr const char* name = "bfs.expand";
  using Fn = void (*)(const BfsCtx&, const VertexId*, std::int64_t,
                      std::vector<VertexId>&);
};

}  // namespace detail
}  // namespace vgp::classic
