#include "vgp/classic/pagerank.hpp"

#include <atomic>
#include <cmath>

#include "vgp/parallel/thread_pool.hpp"
#include "vgp/simd/registry.hpp"
#include "vgp/support/opcount.hpp"

namespace vgp::classic {

namespace detail {

void pr_pull_scalar(const PrCtx& ctx, std::int64_t first, std::int64_t last) {
  auto& oc = opcount::local();
  for (std::int64_t v = first; v < last; ++v) {
    const auto b = ctx.offsets[static_cast<std::size_t>(v)];
    const auto e = ctx.offsets[static_cast<std::size_t>(v) + 1];
    float sum = 0.0f;
    for (auto i = b; i < e; ++i) sum += ctx.contrib[ctx.adj[i]];
    ctx.next[v] = ctx.base + ctx.damping * sum;
    oc.scalar_ops += 2 * (e - b) + 2;
  }
}

}  // namespace detail

PageRankResult pagerank(const Graph& g, const PageRankOptions& opts) {
  const auto n = g.num_vertices();
  PageRankResult res;
  if (n == 0) return res;

  const auto pull = simd::select<detail::PrPullKernel>(opts.backend).fn;

  const float inv_n = 1.0f / static_cast<float>(n);
  std::vector<float> rank(static_cast<std::size_t>(n), inv_n);
  std::vector<float> next(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> contrib(static_cast<std::size_t>(n), 0.0f);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // contrib[v] = rank[v]/deg(v); dangling mass is spread uniformly.
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const auto d = g.degree(v);
      if (d == 0) {
        dangling += rank[static_cast<std::size_t>(v)];
        contrib[static_cast<std::size_t>(v)] = 0.0f;
      } else {
        contrib[static_cast<std::size_t>(v)] =
            rank[static_cast<std::size_t>(v)] / static_cast<float>(d);
      }
    }

    detail::PrCtx ctx;
    ctx.offsets = g.offsets_data();
    ctx.adj = g.adjacency_data();
    ctx.contrib = contrib.data();
    ctx.next = next.data();
    ctx.damping = static_cast<float>(opts.damping);
    ctx.base = static_cast<float>((1.0 - opts.damping) / static_cast<double>(n) +
                                  opts.damping * dangling / static_cast<double>(n));

    parallel_for(0, n, opts.grain, [&](std::int64_t first, std::int64_t last) {
      pull(ctx, first, last);
    });

    double delta = 0.0;
    for (std::int64_t v = 0; v < n; ++v) {
      delta += std::abs(static_cast<double>(next[static_cast<std::size_t>(v)]) -
                        static_cast<double>(rank[static_cast<std::size_t>(v)]));
    }
    rank.swap(next);
    ++res.iterations;
    res.final_delta = delta;
    if (delta < opts.tolerance) break;
  }

  res.rank = std::move(rank);
  return res;
}

}  // namespace vgp::classic
