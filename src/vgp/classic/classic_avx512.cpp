// AVX-512 kernels for the classic contrast algorithms (BFS, PageRank).
// Compiled with -mavx512f -mavx512cd.
//
// Both kernels use ONPL-style neighbor vectors but need none of the
// reduce-scatter machinery of the partitioning kernels:
//   * BFS scatters the SAME level value from every lane, so duplicate
//     targets are benign;
//   * PageRank pulls with gathers only — no scatter at all.
// That asymmetry is the paper's motivating observation.
#include "vgp/classic/bfs.hpp"
#include "vgp/classic/pagerank.hpp"
#include "vgp/simd/avx512_common.hpp"

namespace vgp::classic::detail {

using simd::kLanes;
using simd::tail_mask16;

void bfs_expand_avx512(const BfsCtx& ctx, const VertexId* frontier,
                       std::int64_t count, std::vector<VertexId>& next) {
  const bool slow = simd::emulate_slow_scatter();
  const __m512i vlevel = _mm512_set1_epi32(ctx.level);
  const __m512i vunreached = _mm512_set1_epi32(kUnreached);
  simd::OpTally tally;

  for (std::int64_t k = 0; k < count; ++k) {
    const VertexId v = frontier[k];
    const auto b = ctx.offsets[static_cast<std::size_t>(v)];
    const auto deg = static_cast<std::int64_t>(
        ctx.offsets[static_cast<std::size_t>(v) + 1] - b);
    const VertexId* adj = ctx.adj + b;

    for (std::int64_t i = 0; i < deg; i += kLanes) {
      const __mmask16 tail = tail_mask16(deg - i);
      const __m512i vnbr = _mm512_maskz_loadu_epi32(tail, adj + i);
      const __m512i vdist = _mm512_mask_i32gather_epi32(
          vlevel, tail, vnbr, ctx.distance, 4);
      const __mmask16 fresh =
          _mm512_mask_cmpeq_epi32_mask(tail, vdist, vunreached);
      tally.add(3, __builtin_popcount(tail), __builtin_popcount(fresh), 0);
      if (fresh == 0) continue;

      // Duplicate targets inside the vector scatter the same level —
      // benign; but the *frontier* must hold each vertex once, so the
      // compress-stored batch is deduplicated against the vector itself
      // by conflict detection.
      simd::scatter_epi32(ctx.distance, fresh, vnbr, vlevel, slow);
      const __m512i conf = _mm512_conflict_epi32(vnbr);
      const __mmask16 unique_fresh = fresh &
          _mm512_mask_cmpeq_epi32_mask(fresh, conf, _mm512_setzero_si512());
      const auto old = next.size();
      next.resize(old + static_cast<std::size_t>(__builtin_popcount(unique_fresh)));
      _mm512_mask_compressstoreu_epi32(next.data() + old, unique_fresh, vnbr);
    }
  }
  tally.flush();
}

void pr_pull_avx512(const PrCtx& ctx, std::int64_t first, std::int64_t last) {
  simd::OpTally tally;
  for (std::int64_t v = first; v < last; ++v) {
    const auto b = ctx.offsets[static_cast<std::size_t>(v)];
    const auto deg = static_cast<std::int64_t>(
        ctx.offsets[static_cast<std::size_t>(v) + 1] - b);
    const VertexId* adj = ctx.adj + b;

    __m512 vsum = _mm512_setzero_ps();
    for (std::int64_t i = 0; i < deg; i += kLanes) {
      const __mmask16 tail = tail_mask16(deg - i);
      const __m512i vnbr = _mm512_maskz_loadu_epi32(tail, adj + i);
      const __m512 vc = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), tail,
                                                 vnbr, ctx.contrib, 4);
      vsum = _mm512_add_ps(vsum, vc);
      tally.add(3, __builtin_popcount(tail), 0, 0);
    }
    ctx.next[v] = ctx.base + ctx.damping * _mm512_reduce_add_ps(vsum);
  }
  tally.flush();
}

}  // namespace vgp::classic::detail
