#include "vgp/classic/bfs.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>

#include "vgp/fault/error.hpp"
#include "vgp/parallel/thread_pool.hpp"
#include "vgp/simd/registry.hpp"
#include "vgp/support/opcount.hpp"

namespace vgp::classic {

namespace detail {

void bfs_expand_scalar(const BfsCtx& ctx, const VertexId* frontier,
                       std::int64_t count, std::vector<VertexId>& next) {
  auto& oc = opcount::local();
  for (std::int64_t k = 0; k < count; ++k) {
    const VertexId v = frontier[k];
    const auto b = ctx.offsets[static_cast<std::size_t>(v)];
    const auto e = ctx.offsets[static_cast<std::size_t>(v) + 1];
    oc.scalar_ops += 2 * (e - b);
    for (auto i = b; i < e; ++i) {
      const VertexId u = ctx.adj[i];
      if (ctx.distance[u] == kUnreached) {
        // Benign race: several threads/lanes may write the same level.
        ctx.distance[u] = ctx.level;
        next.push_back(u);
      }
    }
  }
}

}  // namespace detail

BfsResult bfs(const Graph& g, VertexId source, const BfsOptions& opts) {
  if (source < 0 || source >= g.num_vertices())
    throw ValidationError(
        ErrorCode::OutOfRange,
        "bfs: source vertex " + std::to_string(source) +
            " out of range (graph has " + std::to_string(g.num_vertices()) +
            " vertices)",
        {.hint = "source must be in [0, n)"});

  BfsResult res;
  res.distance.assign(static_cast<std::size_t>(g.num_vertices()), kUnreached);
  res.distance[static_cast<std::size_t>(source)] = 0;
  res.reached = 1;

  const auto expand = simd::select<detail::BfsExpandKernel>(opts.backend).fn;

  detail::BfsCtx ctx;
  ctx.offsets = g.offsets_data();
  ctx.adj = g.adjacency_data();
  ctx.distance = res.distance.data();

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::mutex merge_mutex;

  while (!frontier.empty()) {
    ++res.rounds;
    ctx.level = res.rounds;  // frontier vertices sit at rounds-1
    next.clear();
    parallel_for(0, static_cast<std::int64_t>(frontier.size()), opts.grain,
                 [&](std::int64_t first, std::int64_t last) {
                   std::vector<VertexId> mine;
                   expand(ctx, frontier.data() + first, last - first, mine);
                   if (!mine.empty()) {
                     std::lock_guard<std::mutex> lock(merge_mutex);
                     next.insert(next.end(), mine.begin(), mine.end());
                   }
                 });
    // Duplicates are possible when two threads discover the same vertex in
    // the same round (both saw it unreached). Deduplicate: the distance is
    // identical either way, but the frontier must not double-expand.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());

    res.reached += static_cast<std::int64_t>(next.size());
    if (!next.empty()) res.max_distance = ctx.level;
    frontier.swap(next);
  }
  return res;
}

bool verify_bfs(const Graph& g, VertexId source,
                const std::vector<std::int32_t>& distance, std::string* why) {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (distance.size() != static_cast<std::size_t>(g.num_vertices()))
    return fail("distance size mismatch");
  if (distance[static_cast<std::size_t>(source)] != 0)
    return fail("source distance not 0");
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto du = distance[static_cast<std::size_t>(u)];
    if (du < kUnreached) return fail("negative distance");
    for (const VertexId v : g.neighbors(u)) {
      const auto dv = distance[static_cast<std::size_t>(v)];
      if (du == kUnreached) {
        if (dv != kUnreached)
          return fail("unreached vertex adjacent to reached one");
      } else {
        if (dv == kUnreached)
          return fail("reached vertex adjacent to unreached one");
        if (std::abs(du - dv) > 1)
          return fail("edge spans more than one level");
      }
    }
    if (du > 0) {
      // Some neighbor must be exactly one level closer.
      bool has_parent = false;
      for (const VertexId v : g.neighbors(u)) {
        has_parent |= (distance[static_cast<std::size_t>(v)] == du - 1);
      }
      if (!has_parent) return fail("vertex has no parent one level up");
    }
  }
  return true;
}

}  // namespace vgp::classic
