// PageRank by power iteration — the second "classic" contrast kernel.
//
// The pull formulation (each vertex gathers its neighbors' scaled ranks)
// vectorizes with gathers alone: no scatter, no reduce-scatter, no
// preprocessing. This is exactly the paper's introduction point — the
// techniques that suffice for PageRank/SpMV do NOT carry over to
// partitioning kernels, whose per-neighbor *group* updates need scatters.
#pragma once

#include <cstdint>
#include <vector>

#include "vgp/graph/csr.hpp"
#include "vgp/simd/backend.hpp"

namespace vgp::classic {

struct PageRankOptions {
  simd::Backend backend = simd::Backend::Auto;
  double damping = 0.85;
  double tolerance = 1e-7;  // L1 change per iteration
  int max_iterations = 100;
  std::int64_t grain = 1024;
};

struct PageRankResult {
  std::vector<float> rank;  // sums to ~1
  int iterations = 0;
  double final_delta = 0.0;
};

PageRankResult pagerank(const Graph& g, const PageRankOptions& opts = {});

namespace detail {

struct PrCtx {
  const std::uint64_t* offsets = nullptr;
  const VertexId* adj = nullptr;
  /// contrib[v] = rank[v] / out_degree(v), precomputed per iteration.
  const float* contrib = nullptr;
  float* next = nullptr;
  float base = 0.0f;     // (1-d)/n + dangling redistribution
  float damping = 0.85f;
};

void pr_pull_scalar(const PrCtx& ctx, std::int64_t first, std::int64_t last);
// 16-lane pull iteration. Declared unconditionally; defined only in
// AVX-512 builds — dispatch through simd::select<PrPullKernel>.
void pr_pull_avx512(const PrCtx& ctx, std::int64_t first, std::int64_t last);

/// Registry tag for the PageRank pull family.
struct PrPullKernel {
  static constexpr const char* name = "pagerank.pull";
  using Fn = void (*)(const PrCtx&, std::int64_t, std::int64_t);
};

}  // namespace detail
}  // namespace vgp::classic
